//! The evaluation algorithm of Figures 4 and 5: demand-driven traversal
//! of the interpretation graph `G(p, a, i)` guided by the automaton
//! hierarchy `EM(p, i)`.
//!
//! # Correspondence with the paper
//!
//! * The paper's `EM` is built by physically splicing fresh copies of
//!   `M(e_r)` over derived-predicate transitions.  We simulate the copies
//!   with *instances*: a node is `(instance, state, term)` where
//!   `instance` identifies one spliced copy and `state` a state of that
//!   copy's machine.  The `id` bridges into and out of a copy become the
//!   instance's entry (its machine's start state) and its `exit` link.
//! * `G` is the node set; arcs are never materialized ("the arcs of the
//!   graph need not be stored at all").
//! * `C` holds the continuation nodes: nodes whose state has an outgoing
//!   transition on a not-yet-expanded derived predicate.
//! * `S` holds the start nodes of the next iteration: `(q_s', u)` for the
//!   fresh copies.
//! * The main loop runs until `C` is empty — or until the caller's
//!   iteration bound, which §3's cyclic-data discussion (Figure 8)
//!   motivates, is reached.
//! * The paper's `traverse` is recursive; we use an explicit stack so
//!   deep databases cannot overflow the call stack.  The visit-once
//!   discipline ("if (q', v) is not yet in G") is identical.

use crate::source::TupleSource;
use rq_automata::{invert_nfa, thompson, Label, Nfa};
use rq_common::{Const, Counters, FxHashMap, FxHashSet, FxHasher, Pred};
use rq_relalg::EqSystem;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which machine an instance runs: the automaton of `pred`'s equation,
/// possibly inverted (for transitions taken through an `Inv` label).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct MachineKey {
    pred: Pred,
    inverted: bool,
}

/// One spliced copy of a machine.
#[derive(Clone, Copy, Debug)]
struct Instance {
    /// Index into [`CompiledPlan::machines`].
    machine: u32,
    /// Where the copy's final state continues: `(instance, state)` of the
    /// parent, or `None` for the root instance (whose final state emits
    /// answers).
    exit: Option<(u32, u32)>,
}

/// A node of `G(p, a, i)`.
type Node = (u32, u32, Const);

/// Monotone source of [`CompiledPlan`] identities: two plans compiled
/// at different times never share machine-memo entries even if their
/// equation systems coincide.
static NEXT_PLAN_ID: AtomicU64 = AtomicU64::new(0);

/// Statistics of one [`EvalContext`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalContextStats {
    /// Memo lookups answered from the context.
    pub hits: u64,
    /// Memo lookups that found nothing.
    pub misses: u64,
    /// Memoized `(plan, machine, constant)` answer sets.
    pub entries: usize,
}

/// An epoch-scoped memo of completed machine traversals, shared by
/// every query evaluated against one immutable database snapshot.
///
/// The key is `(plan id, machine, source constant)`; the value is the
/// complete, converged answer set of traversing that machine from that
/// constant — exactly the answer set of the point query the machine
/// encodes.  Per-source runs over one equation system traverse
/// overlapping state, which is what makes the sharing worthwhile: the
/// evaluator consults the memo both at the **root** (a repeated point
/// query returns instantly) and at **machine-instance expansion time**
/// (a continuation about to splice a fresh copy of machine `m` for
/// term `u` routes `m`'s memoized answers straight to the parent state
/// instead of re-traversing the sub-machine).
///
/// Soundness rests on two invariants the evaluator maintains:
///
/// * only *naturally converged* runs record (never runs truncated by an
///   iteration bound, a node budget, or a `stop_on_answer` early exit),
///   so every entry is a complete fixpoint answer set; and
/// * the context must never outlive the database version it was
///   computed on — the serving layer keys one context per snapshot
///   epoch, so publishing a new epoch invalidates wholesale by
///   construction.
///
/// The memo is concurrency-safe ([`rq_common::BoundedMemo`]): one
/// context serves every worker thread of a batch.  It is bounded by an
/// entry cap: once full, new results simply are not recorded — always
/// sound, because the memo is an optimization, never the source of
/// truth — so a long-lived epoch serving a diverse query stream cannot
/// grow without bound.
pub struct EvalContext {
    /// `(plan id, machine, source constant) → complete answer set`.
    memo: rq_common::BoundedMemo<(u64, u32, Const), Vec<Const>>,
}

/// Default entry cap for [`EvalContext`].
pub const DEFAULT_CONTEXT_ENTRIES: usize = 1 << 16;

impl EvalContext {
    /// Fresh, empty context with the default entry cap
    /// ([`DEFAULT_CONTEXT_ENTRIES`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CONTEXT_ENTRIES)
    }

    /// Fresh, empty context holding at most `max_entries` memoized
    /// answer sets; overflow stops recording (never lookups).
    pub fn with_capacity(max_entries: usize) -> Self {
        Self {
            memo: rq_common::BoundedMemo::new(max_entries),
        }
    }

    fn lookup(&self, plan: u64, machine: u32, from: Const) -> Option<Arc<Vec<Const>>> {
        self.memo.get(&(plan, machine, from))
    }

    fn record(&self, plan: u64, machine: u32, from: Const, answers: &FxHashSet<Const>) {
        let key = (plan, machine, from);
        // Saturated memo: skip the clone + sort a refused insert would
        // throw away (one read-lock probe instead).
        if self.memo.would_refuse(&key) {
            return;
        }
        let mut sorted: Vec<Const> = answers.iter().copied().collect();
        sorted.sort_unstable();
        self.memo.insert(key, Arc::new(sorted));
    }

    /// Carry the entries of `prev` whose `(plan id, machine)` the
    /// caller vouches for into this context (answer sets are
    /// `Arc`-shared, never cloned).  Returns how many entries carried.
    ///
    /// This is the cross-epoch half of the memo story: a memoized
    /// answer set stays valid across a database publish as long as the
    /// relations its machine (transitively) reads were untouched.  The
    /// serving layer resolves that from plan read-sets vs. the
    /// publish's dirty shards ([`CompiledPlan::machine_preds`] maps
    /// each machine index back to its predicate); the engine only
    /// moves the vouched-for entries.
    pub fn carry_from(&self, prev: &EvalContext, mut keep: impl FnMut(u64, u32) -> bool) -> usize {
        self.memo
            .carry_from(&prev.memo, |&(plan, machine, _)| keep(plan, machine))
    }

    /// Every memoized `(machine, root constant)` of `plan` whose
    /// machine is in `machines`, sorted — the work-list of a delta
    /// repair ([`Evaluator::repair`]).
    pub fn roots_for(&self, plan: u64, machines: &FxHashSet<u32>) -> Vec<(u32, Const)> {
        let mut out = Vec::new();
        self.memo.for_each(|&(p, m, c), _| {
            if p == plan && machines.contains(&m) {
                out.push((m, c));
            }
        });
        out.sort_unstable();
        out
    }

    /// The memoized answer set for one key, without counting a hit or
    /// a miss (maintenance reads must not skew serving stats).
    pub fn peek(&self, plan: u64, machine: u32, from: Const) -> Option<Arc<Vec<Const>>> {
        self.memo.peek(&(plan, machine, from))
    }

    /// Merge `additions` into an existing memoized answer set, keeping
    /// it sorted and deduplicated.  Returns how many answers were
    /// genuinely new.  A missing entry is left missing: an absent memo
    /// key re-derives on demand, so there is nothing to repair.
    ///
    /// Soundness: the caller vouches that after the additions the entry
    /// is the **complete** fixpoint answer set over the *new* database
    /// version — this is the semi-naive repair contract (monotone
    /// additions only; deletions invalidate wholesale instead).
    pub fn patch(&self, plan: u64, machine: u32, from: Const, additions: &FxHashSet<Const>) -> u64 {
        let key = (plan, machine, from);
        let Some(existing) = self.memo.peek(&key) else {
            return 0;
        };
        let mut merged: Vec<Const> = existing
            .iter()
            .copied()
            .chain(additions.iter().copied())
            .collect();
        merged.sort_unstable();
        merged.dedup();
        let added = (merged.len() - existing.len()) as u64;
        if added > 0 {
            self.memo.insert(key, Arc::new(merged));
        }
        added
    }

    /// Drop every entry of `plan` whose machine is in `machines` — the
    /// fallback when a repair cannot complete (truncated closure):
    /// stale entries must not serve, so queries re-derive cold.
    /// Returns how many entries were purged.
    pub fn purge(&self, plan: u64, machines: &FxHashSet<u32>) -> usize {
        self.memo
            .retain(|&(p, m, _)| p != plan || !machines.contains(&m))
    }

    /// Number of memoized answer sets.
    pub fn entries(&self) -> usize {
        self.memo.len()
    }

    /// Hit/miss/entry counts.
    pub fn stats(&self) -> EvalContextStats {
        let stats = self.memo.stats();
        EvalContextStats {
            hits: stats.hits,
            misses: stats.misses,
            entries: stats.entries,
        }
    }
}

impl Default for EvalContext {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EvalContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EvalContext")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// Options controlling an evaluation.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Stop after this many iterations of the main loop even if `C` is
    /// not empty.  With cyclic data the natural termination condition
    /// may never hold (Figure 8); §3 adopts the Marchetti-Spaccamela
    /// bound `m·n`, which [`crate::query::cyclic_iteration_bound`]
    /// computes.  When the bound is at least the data's true requirement
    /// the answer set is complete.
    pub max_iterations: Option<u64>,
    /// Abort (with `converged = false`) once the graph `G` holds this
    /// many nodes.  A safety valve for non-terminating evaluations —
    /// §4 queries over cyclic data can otherwise grow `G` without
    /// bound, since the m·n cyclic guard only covers the §3 linear
    /// shape.  `None` (the default) means no limit.
    pub node_budget: Option<u64>,
    /// Stop the traversal as soon as this constant is emitted as an
    /// answer.  The `p(a, b)` membership form sets this to `b`: once
    /// `b` is known to be in the answer set there is no point
    /// materializing the rest of `p(a, Y)`.  A run stopped this way
    /// reports `converged = true` — the membership question is fully
    /// answered — but its answer set is deliberately partial.
    pub stop_on_answer: Option<Const>,
    /// Worker threads for the traversal phase of each iteration:
    /// the iteration's work-list of start nodes is split across this
    /// many scoped threads, which share the visit-once node set and
    /// merge their answer/continuation sets deterministically (sets
    /// union order-independently, and the expansion phase orders its
    /// work-list, so instance numbering is schedule-independent).
    /// `0` and `1` both mean sequential; the value is capped by the
    /// `RQC_THREADS` environment variable
    /// ([`rq_common::capped_threads`]).
    pub expand_threads: usize,
    /// Record per-iteration statistics.
    pub record_iterations: bool,
    /// Record the nodes and arcs of `G(p, a, i)` for export (Figure 3
    /// style).  Off by default: the algorithm itself never stores arcs.
    pub record_graph: bool,
}

/// Statistics for one iteration of the main loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterationStat {
    /// Nodes added to `G` this iteration.
    pub new_nodes: u64,
    /// Answers known after this iteration.
    pub answers_so_far: u64,
    /// Continuation nodes pending at the end of this iteration.
    pub continuations: u64,
    /// Size of the traversal work-list this iteration started from
    /// (the freshly seeded start nodes).
    pub worklist: u64,
}

/// How one recorded arc of `G(p, a, i)` was derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcKind {
    /// An `id` transition.
    Id,
    /// A base-relation transition, forward.
    Sym(Pred),
    /// A base-relation transition, inverse.
    Inv(Pred),
    /// The implicit `id` from a copy's final state back to its parent.
    Exit,
    /// The implicit `id` from a continuation node into a fresh copy.
    Enter(Pred),
}

/// A node of the recorded graph: `(instance, state, term)`.
pub type DumpNode = (u32, u32, Const);

/// A recorded arc `(from, kind, to)`.
pub type DumpArc = (DumpNode, ArcKind, DumpNode);

/// A recorded interpretation graph (only when
/// [`EvalOptions::record_graph`] is set): nodes are
/// `(instance, state, term)`, arcs carry their provenance.
#[derive(Clone, Debug)]
pub struct GraphDump {
    /// All arcs `(from, kind, to)`.  The node set is implied.
    pub arcs: Vec<DumpArc>,
    /// The root start node.
    pub start: (u32, u32, Const),
    /// Final-state nodes (answers) of the root instance.
    pub answer_nodes: Vec<(u32, u32, Const)>,
}

impl GraphDump {
    /// Render as GraphViz DOT; `show` renders a term.
    pub fn to_dot(
        &self,
        show: &impl Fn(Const) -> String,
        pred_name: &impl Fn(Pred) -> String,
    ) -> String {
        let mut out = String::from("digraph g {\n  rankdir=LR;\n");
        let node_id = |n: &(u32, u32, Const)| format!("\"i{}q{}_{}\"", n.0, n.1, show(n.2));
        out.push_str(&format!("  {} [style=bold];\n", node_id(&self.start)));
        for n in &self.answer_nodes {
            out.push_str(&format!("  {} [shape=doublecircle];\n", node_id(n)));
        }
        for (from, kind, to) in &self.arcs {
            let label = match kind {
                ArcKind::Id => "id".to_string(),
                ArcKind::Sym(r) => pred_name(*r),
                ArcKind::Inv(r) => format!("{}^-1", pred_name(*r)),
                ArcKind::Exit => "id (exit)".to_string(),
                ArcKind::Enter(r) => format!("id (enter {})", pred_name(*r)),
            };
            out.push_str(&format!(
                "  {} -> {} [label=\"{}\"];\n",
                node_id(from),
                node_id(to),
                label
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Number of distinct nodes mentioned.
    pub fn node_count(&self) -> usize {
        let mut set: FxHashSet<(u32, u32, Const)> = FxHashSet::default();
        set.insert(self.start);
        for (a, _, b) in &self.arcs {
            set.insert(*a);
            set.insert(*b);
        }
        set.len()
    }
}

/// Result of an evaluation.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    /// The answer set: all `v` with `(q_f, v)` in the final graph.
    pub answers: FxHashSet<Const>,
    /// Unit-cost instrumentation.
    pub counters: Counters,
    /// Whether the algorithm stopped because `C` was empty (`true`) or
    /// because the iteration bound was hit (`false`).
    pub converged: bool,
    /// Number of nodes in the final graph `G`.
    pub graph_nodes: u64,
    /// Number of machine copies spliced (≥ 1 for the root).
    pub instances: u64,
    /// Epoch-memo teleports: sub-traversals skipped because the
    /// complete answer set was already memoized (a root-level hit
    /// counts as one).
    pub memo_teleports: u64,
    /// Per-iteration statistics, if requested.
    pub iteration_stats: Vec<IterationStat>,
    /// The recorded graph, if requested.
    pub graph: Option<GraphDump>,
}

/// The compiled half of an evaluator: Thompson machines for every
/// derived predicate of an equation system, in both orientations, plus
/// the lookup tables the traversal needs.
///
/// Compiling a plan runs the `thompson` (and optionally `compact`)
/// constructions once; the plan is immutable afterwards and `Sync`, so
/// a serving layer can compile once per program and share the plan
/// across concurrent query threads ([`Evaluator::with_plan`]).
pub struct CompiledPlan {
    id: u64,
    machines: Vec<Nfa>,
    machine_index: FxHashMap<MachineKey, u32>,
    derived: FxHashSet<Pred>,
}

impl CompiledPlan {
    /// Compile plain Thompson machines for `system`.
    pub fn compile(system: &EqSystem) -> Self {
        Self::build(system, false)
    }

    /// Compile ε-compacted machines ([`rq_automata::compact()`]): same
    /// answers, fewer `id` transitions and so fewer glue nodes in
    /// `G(p, a, i)`.
    pub fn compile_compacted(system: &EqSystem) -> Self {
        Self::build(system, true)
    }

    fn build(system: &EqSystem, compact_machines: bool) -> Self {
        let derived = system.derived();
        let mut machines = Vec::with_capacity(system.lhs.len() * 2);
        let mut machine_index = FxHashMap::default();
        for &p in &system.lhs {
            let mut m = thompson(&system.rhs[&p]);
            if compact_machines {
                m = rq_automata::compact(&m).0;
            }
            machine_index.insert(
                MachineKey {
                    pred: p,
                    inverted: true,
                },
                machines.len() as u32 + 1,
            );
            machine_index.insert(
                MachineKey {
                    pred: p,
                    inverted: false,
                },
                machines.len() as u32,
            );
            machines.push(m.clone());
            machines.push(invert_nfa(&m));
        }
        Self {
            id: NEXT_PLAN_ID.fetch_add(1, Ordering::Relaxed),
            machines,
            machine_index,
            derived,
        }
    }

    /// The plan's process-unique identity — the [`EvalContext`] memo
    /// key component that keeps two plans' machine numberings apart.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of compiled machines (two per derived predicate).
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// `(machine index, predicate)` for every compiled machine (both
    /// orientations map back to their predicate), sorted by index.
    /// This is the granularity of cross-epoch memo carry-forward: an
    /// [`EvalContext`] entry for machine `m` stays valid across a
    /// publish exactly when the read-set of `m`'s predicate is
    /// disjoint from the publish's dirty shards.
    pub fn machine_preds(&self) -> Vec<(u32, Pred)> {
        let mut out: Vec<(u32, Pred)> = self
            .machine_index
            .iter()
            .map(|(key, &machine)| (machine, key.pred))
            .collect();
        out.sort_unstable_by_key(|&(machine, _)| machine);
        out
    }

    /// Total states across all compiled machines.
    pub fn total_states(&self) -> usize {
        self.machines.iter().map(|m| m.trans.len()).sum()
    }

    /// Machine indices whose traversals can consult any predicate in
    /// `dirty` — directly through a base-label transition, or
    /// transitively by splicing an affected child machine.  These are
    /// exactly the machines whose [`EvalContext`] entries a publish of
    /// `dirty` makes stale (the engine-side mirror of the serving
    /// layer's read-set check).
    pub fn affected_machines(&self, dirty: &FxHashSet<Pred>) -> FxHashSet<u32> {
        let mut affected: FxHashSet<u32> = FxHashSet::default();
        for (idx, m) in self.machines.iter().enumerate() {
            let direct = m.trans.iter().flatten().any(|&(label, _)| match label {
                Label::Sym(r) | Label::Inv(r) => !self.derived.contains(&r) && dirty.contains(&r),
                Label::Id => false,
            });
            if direct {
                affected.insert(idx as u32);
            }
        }
        // Propagate through derived-label routing to a fixpoint: a
        // machine that splices an affected child is itself affected.
        loop {
            let mut grew = false;
            for (idx, m) in self.machines.iter().enumerate() {
                if affected.contains(&(idx as u32)) {
                    continue;
                }
                let routes = m.trans.iter().flatten().any(|&(label, _)| {
                    let (r, inverted) = match label {
                        Label::Sym(r) => (r, false),
                        Label::Inv(r) => (r, true),
                        Label::Id => return false,
                    };
                    self.derived.contains(&r)
                        && affected.contains(&self.machine_index[&MachineKey { pred: r, inverted }])
                });
                if routes {
                    affected.insert(idx as u32);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        affected
    }

    /// For every machine, the derived-label transitions that splice a
    /// given child machine: `child machine → [(machine, from state, to
    /// state)]`.  The repair loop uses this to lift a child machine's
    /// new `(entry, answer)` pairs into frontier edges of its parents.
    fn derived_routes(&self) -> FxHashMap<u32, Vec<(u32, u32, u32)>> {
        let mut routes: FxHashMap<u32, Vec<(u32, u32, u32)>> = FxHashMap::default();
        for (mi, m) in self.machines.iter().enumerate() {
            for (s, trans) in m.trans.iter().enumerate() {
                for &(label, to) in trans {
                    let (r, inverted) = match label {
                        Label::Sym(r) => (r, false),
                        Label::Inv(r) => (r, true),
                        Label::Id => continue,
                    };
                    if !self.derived.contains(&r) {
                        continue;
                    }
                    let child = self.machine_index[&MachineKey { pred: r, inverted }];
                    routes
                        .entry(child)
                        .or_default()
                        .push((mi as u32, s as u32, to as u32));
                }
            }
        }
        routes
    }
}

/// How an evaluator holds its plan: built for this evaluator, or
/// borrowed from a cache.
enum PlanRef<'a> {
    Owned(Box<CompiledPlan>),
    Shared(&'a CompiledPlan),
}

impl PlanRef<'_> {
    #[inline]
    fn get(&self) -> &CompiledPlan {
        match self {
            PlanRef::Owned(p) => p,
            PlanRef::Shared(p) => p,
        }
    }
}

/// Shards of the concurrent visit-once node set used by parallel
/// traversal phases.  Power of two; the shard is picked from the top
/// hash bits so the intra-shard hash distribution stays intact.
const GRAPH_SHARDS: usize = 64;

/// Fewest start nodes for which a traversal phase fans out across
/// scoped worker threads.  Spawning a thread costs tens of
/// microseconds — more than a small phase's entire expansion — so
/// phases below this stay on the caller thread regardless of the
/// configured worker count.  Work stealing rebalances within a phase,
/// so the seed count only has to justify the spawns, not predict the
/// phase's final shape.
const PARALLEL_MIN_SEEDS: usize = 32;

/// Safety valve on [`Evaluator::repair`]'s lift rounds.  Each round
/// peels one level of machine-splice nesting, so real repairs finish in
/// a handful; tripping the cap means something pathological and the
/// repair falls back to a purge.
const MAX_REPAIR_ROUNDS: u32 = 64;

/// Memoized repair-closure results: `(machine, seed state, seed term)` →
/// complete answer set, or `None` when the traversal's budgets
/// truncated that closure.
type ClosureCache = FxHashMap<(u32, u32, Const), Option<Arc<FxHashSet<Const>>>>;

/// The node set `G`, sharded behind mutexes so the traversal workers of
/// one iteration can share the visit-once discipline: `insert` is
/// atomic per node, so exactly one worker wins each node and expands
/// it — work is partitioned, never duplicated.
struct SharedNodes {
    shards: Vec<Mutex<FxHashSet<Node>>>,
}

impl SharedNodes {
    fn new() -> Self {
        Self {
            shards: (0..GRAPH_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
        }
    }

    fn insert(&self, node: Node) -> bool {
        let mut h = FxHasher::default();
        node.hash(&mut h);
        let shard = (h.finish() >> 58) as usize % GRAPH_SHARDS;
        self.shards[shard]
            .lock()
            .expect("graph shard lock poisoned")
            .insert(node)
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("graph shard lock poisoned").len())
            .sum()
    }
}

/// The node set `G` in whichever representation the traversal has
/// needed so far: a plain set while every phase has run sequentially,
/// upgraded in place to the sharded concurrent set the first time a
/// phase fans out.  Starting sequential matters on the serving cold
/// path — a point query whose graph holds a dozen nodes must not pay
/// for [`GRAPH_SHARDS`] mutexes up front.
enum Graph {
    Seq(FxHashSet<Node>),
    Par(SharedNodes),
}

impl Graph {
    fn insert(&mut self, node: Node) -> bool {
        match self {
            Graph::Seq(set) => set.insert(node),
            Graph::Par(nodes) => nodes.insert(node),
        }
    }

    fn len(&self) -> usize {
        match self {
            Graph::Seq(set) => set.len(),
            Graph::Par(nodes) => nodes.len(),
        }
    }

    /// Upgrade to the sharded representation (a no-op if already
    /// there): every visited node is re-inserted once, O(|G|), paid
    /// only by traversals that actually go parallel.
    fn ensure_sharded(&mut self) {
        if let Graph::Seq(set) = self {
            let nodes = SharedNodes::new();
            for node in set.drain() {
                nodes.insert(node);
            }
            *self = Graph::Par(nodes);
        }
    }
}

/// Access to the visit-once node set from one traversal worker.
trait NodeVisit {
    /// Insert into `G`; `true` when the node is new (the caller owns
    /// its expansion).
    fn visit(&mut self, node: Node) -> bool;
}

impl NodeVisit for Graph {
    fn visit(&mut self, node: Node) -> bool {
        self.insert(node)
    }
}

/// A parallel worker's handle on the shared node set.
struct ParVisit<'a>(&'a SharedNodes);

impl NodeVisit for ParVisit<'_> {
    fn visit(&mut self, node: Node) -> bool {
        self.0.insert(node)
    }
}

/// The read-only state one traversal phase runs against.  Machine
/// instances and their expansion table are only mutated between
/// iterations (in the expansion phase), which is what makes the
/// traversal phase safely shareable across worker threads.
struct StepCtx<'p> {
    plan: &'p CompiledPlan,
    instances: &'p [Instance],
    expansions: &'p FxHashMap<(u32, u32, u32), u32>,
    stop_on_answer: Option<Const>,
    record_graph: bool,
}

/// Expand one node of `G`: emit answers or exit to the parent at final
/// states, follow `id` and base-relation transitions, route derived
/// transitions into already-spliced copies, and queue continuations
/// for everything else.  Returns `true` when the `stop_on_answer`
/// target was emitted (the caller stops the traversal).
///
/// This is the single transition step both the sequential loop and
/// every parallel worker run; only the node-set handle differs.
#[allow(clippy::too_many_arguments)]
fn expand_node<S: TupleSource, V: NodeVisit>(
    step: &StepCtx<'_>,
    source: &S,
    node: Node,
    graph: &mut V,
    stack: &mut Vec<Node>,
    answers: &mut FxHashSet<Const>,
    continuations: &mut FxHashMap<(u32, u32), FxHashSet<Const>>,
    counters: &mut Counters,
    succ_buf: &mut Vec<Const>,
    arcs: &mut Vec<DumpArc>,
) -> bool {
    let (inst, state, term) = node;
    let instance = step.instances[inst as usize];
    let machine = &step.plan.machines[instance.machine as usize];
    // Final state: exit to the parent (an implicit id arc) or emit an
    // answer at the root.
    if state as usize == machine.finish {
        match instance.exit {
            None => {
                answers.insert(term);
                if step.stop_on_answer == Some(term) {
                    // Membership established: the partial answer set
                    // already decides the query.
                    return true;
                }
            }
            Some((pi, pq)) => {
                let exit_node = (pi, pq, term);
                if step.record_graph {
                    arcs.push((node, ArcKind::Exit, exit_node));
                }
                if graph.visit(exit_node) {
                    counters.nodes_inserted += 1;
                    stack.push(exit_node);
                }
            }
        }
    }
    for (t_idx, &(label, to)) in machine.trans[state as usize].iter().enumerate() {
        counters.rule_firings += 1;
        match label {
            Label::Id => {
                let next = (inst, to as u32, term);
                if step.record_graph {
                    arcs.push((node, ArcKind::Id, next));
                }
                if graph.visit(next) {
                    counters.nodes_inserted += 1;
                    stack.push(next);
                }
            }
            Label::Sym(r) | Label::Inv(r) => {
                if step.plan.derived.contains(&r) {
                    // Already expanded? Route straight into the child
                    // copy; otherwise queue in C.
                    if let Some(&child) = step.expansions.get(&(inst, state, t_idx as u32)) {
                        let child_start = step.plan.machines
                            [step.instances[child as usize].machine as usize]
                            .start as u32;
                        let next = (child, child_start, term);
                        if step.record_graph {
                            arcs.push((node, ArcKind::Enter(r), next));
                        }
                        if graph.visit(next) {
                            counters.nodes_inserted += 1;
                            stack.push(next);
                        }
                    } else {
                        continuations.entry((inst, state)).or_default().insert(term);
                    }
                    continue;
                }
                succ_buf.clear();
                match label {
                    Label::Sym(_) => source.successors(r, term, succ_buf, counters),
                    Label::Inv(_) => source.predecessors(r, term, succ_buf, counters),
                    Label::Id => unreachable!(),
                }
                for &v in succ_buf.iter() {
                    let next = (inst, to as u32, v);
                    if step.record_graph {
                        let kind = match label {
                            Label::Sym(_) => ArcKind::Sym(r),
                            _ => ArcKind::Inv(r),
                        };
                        arcs.push((node, kind, next));
                    }
                    if graph.visit(next) {
                        counters.nodes_inserted += 1;
                        stack.push(next);
                    }
                }
            }
        }
    }
    false
}

/// One iteration's traversal phase across `workers` scoped threads,
/// scheduled by work stealing: each worker owns a deque seeded with a
/// round-robin share of the work-list, pops its own newest node
/// (LIFO, cache-friendly), publishes every node it discovers back to
/// its deque, and — when its deque runs dry — steals the oldest half
/// of a victim's deque.  A static deal would strand a worker whose
/// seed happens to sit in a small region of the graph while another
/// worker expands a heavy hub alone; stealing rebalances at the
/// granularity of individual expansions.
///
/// Termination: a shared pending-node count, incremented *before* a
/// discovered node is published and decremented *after* its expansion
/// completes, so it can only read zero when no node is queued or in
/// flight anywhere.
///
/// Workers share the visit-once node set (so no node is expanded
/// twice) and keep local answer/continuation sets that the caller
/// merges.  The merge is deterministic: answers and continuations are
/// sets (union is order-independent), counters are sums, and which
/// worker expands a node never changes what the expansion produces.
#[allow(clippy::too_many_arguments)]
fn traverse_parallel<S: TupleSource>(
    step: &StepCtx<'_>,
    source: &S,
    nodes: &SharedNodes,
    seeds: Vec<Node>,
    workers: usize,
    answers: &mut FxHashSet<Const>,
    continuations: &mut FxHashMap<(u32, u32), FxHashSet<Const>>,
    counters: &mut Counters,
) -> bool {
    let pending = AtomicUsize::new(seeds.len());
    let deques: Vec<Mutex<VecDeque<Node>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, node) in seeds.into_iter().enumerate() {
        lock_deque(&deques[i % workers]).push_back(node);
    }
    let stop = AtomicBool::new(false);
    type WorkerOutcome = (
        FxHashSet<Const>,
        FxHashMap<(u32, u32), FxHashSet<Const>>,
        Counters,
        bool,
    );
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (stop, pending, deques) = (&stop, &pending, &deques);
                scope.spawn(move || {
                    let mut visit = ParVisit(nodes);
                    let mut answers = FxHashSet::default();
                    let mut continuations = FxHashMap::default();
                    let mut counters = Counters::new();
                    let mut succ_buf = Vec::new();
                    let mut arcs = Vec::new();
                    let mut discovered: Vec<Node> = Vec::new();
                    let mut found = false;
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // Two statements on purpose: the `pop_back`
                        // temporary guard must drop before stealing, or
                        // the thief would re-lock (and deadlock on) its
                        // own deque inside `steal_half`.
                        let popped = lock_deque(&deques[w]).pop_back();
                        let node = popped.or_else(|| steal_half(deques, w));
                        let Some(node) = node else {
                            if pending.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            std::thread::yield_now();
                            continue;
                        };
                        if expand_node(
                            step,
                            source,
                            node,
                            &mut visit,
                            &mut discovered,
                            &mut answers,
                            &mut continuations,
                            &mut counters,
                            &mut succ_buf,
                            &mut arcs,
                        ) {
                            found = true;
                            stop.store(true, Ordering::Relaxed);
                            pending.fetch_sub(1, Ordering::Release);
                            break;
                        }
                        // Publish discoveries before retiring the
                        // expanded node, so `pending` never dips to
                        // zero while work exists.
                        if !discovered.is_empty() {
                            pending.fetch_add(discovered.len(), Ordering::Release);
                            lock_deque(&deques[w]).extend(discovered.drain(..));
                        }
                        pending.fetch_sub(1, Ordering::Release);
                    }
                    (answers, continuations, counters, found)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("traversal worker panicked"))
            .collect()
    });
    let mut stopped = false;
    for (worker_answers, worker_continuations, worker_counters, found) in outcomes {
        answers.extend(worker_answers);
        for (key, terms) in worker_continuations {
            continuations.entry(key).or_default().extend(terms);
        }
        *counters += worker_counters;
        stopped |= found;
    }
    stopped
}

/// Lock one worker's deque, recovering from poison: a panicked worker
/// is already propagated by the scope join, and a deque of plain node
/// tuples cannot be torn.
fn lock_deque(dq: &Mutex<VecDeque<Node>>) -> std::sync::MutexGuard<'_, VecDeque<Node>> {
    dq.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Steal the oldest half of the first non-empty victim deque into
/// thief `w`'s own deque, returning one node to expand now.  Victims
/// are probed in ring order starting after the thief; locks are never
/// held pairwise (the loot is moved through a local buffer), so two
/// thieves cannot deadlock.
fn steal_half(deques: &[Mutex<VecDeque<Node>>], w: usize) -> Option<Node> {
    let workers = deques.len();
    for d in 1..workers {
        let victim = (w + d) % workers;
        let mut loot: VecDeque<Node> = {
            let mut dq = lock_deque(&deques[victim]);
            let take = dq.len().div_ceil(2);
            if take == 0 {
                continue;
            }
            dq.drain(..take).collect()
        };
        let node = loot.pop_back();
        if !loot.is_empty() {
            let mut own = lock_deque(&deques[w]);
            debug_assert!(own.is_empty(), "thieves steal only when dry");
            *own = loot;
        }
        return node;
    }
    None
}

/// The evaluator for one equation system over one tuple source.
pub struct Evaluator<'a, S: TupleSource> {
    system: &'a EqSystem,
    source: &'a S,
    plan: PlanRef<'a>,
    ctx: Option<&'a EvalContext>,
}

impl<'a, S: TupleSource> Evaluator<'a, S> {
    /// Build an evaluator.  Machines for every derived predicate of the
    /// system are compiled eagerly in both orientations (they are tiny —
    /// proportional to the equation sizes).
    pub fn new(system: &'a EqSystem, source: &'a S) -> Self {
        Self {
            system,
            source,
            plan: PlanRef::Owned(Box::new(CompiledPlan::compile(system))),
            ctx: None,
        }
    }

    /// Build an evaluator whose machines are ε-compacted
    /// ([`rq_automata::compact()`]).  Same answers; fewer `id` transitions
    /// means fewer glue nodes in `G(p, a, i)` (measured by the
    /// `compact` ablation bench).
    pub fn new_compacted(system: &'a EqSystem, source: &'a S) -> Self {
        Self {
            system,
            source,
            plan: PlanRef::Owned(Box::new(CompiledPlan::compile_compacted(system))),
            ctx: None,
        }
    }

    /// Build an evaluator around an already compiled plan (which must
    /// have been compiled from `system`).  This skips all machine
    /// construction, so a cached plan turns evaluator setup into a few
    /// pointer copies.
    pub fn with_plan(system: &'a EqSystem, plan: &'a CompiledPlan, source: &'a S) -> Self {
        Self {
            system,
            source,
            plan: PlanRef::Shared(plan),
            ctx: None,
        }
    }

    /// Attach an epoch-scoped [`EvalContext`]: completed traversals of
    /// this evaluator record their answer sets into the context, and
    /// later evaluations — by this evaluator or any other sharing the
    /// context — reuse them at the root and at machine-instance
    /// expansion time.  The caller owns the invalidation contract: a
    /// context must only ever be shared between evaluations over the
    /// **same** database version (the serving layer keys one context
    /// per snapshot epoch).
    pub fn with_context(mut self, ctx: &'a EvalContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// The equation system being evaluated.
    pub fn system(&self) -> &EqSystem {
        self.system
    }

    /// Evaluate the query `p(a, Y)` (or, with `inverted`, the query
    /// `p(X, a)` through the inverse machine).
    pub fn evaluate(&self, p: Pred, a: Const, options: &EvalOptions) -> EvalOutcome {
        self.evaluate_inner(p, a, false, options)
    }

    /// Evaluate `p(X, a)` by traversing the inverse machine from `a`.
    pub fn evaluate_inverse(&self, p: Pred, a: Const, options: &EvalOptions) -> EvalOutcome {
        self.evaluate_inner(p, a, true, options)
    }

    fn machine_id(&self, pred: Pred, inverted: bool) -> u32 {
        self.plan.get().machine_index[&MachineKey { pred, inverted }]
    }

    fn evaluate_inner(
        &self,
        p: Pred,
        a: Const,
        inverted: bool,
        options: &EvalOptions,
    ) -> EvalOutcome {
        assert!(
            self.system.rhs.contains_key(&p),
            "query predicate must be derived"
        );
        let plan = self.plan.get();
        let root_machine = self.machine_id(p, inverted);
        let span = rq_common::obs::span("engine.traverse");
        // Introspection runs (recorded graphs, per-iteration stats)
        // bypass the epoch memo: they exist to observe the plain
        // algorithm, and memo shortcuts would skew what they record.
        let ctx = if options.record_graph || options.record_iterations {
            None
        } else {
            self.ctx
        };
        if let Some(ctx) = ctx {
            if let Some(hit) = ctx.lookup(plan.id, root_machine, a) {
                // The complete answer set of this exact traversal is
                // already memoized for the epoch.
                span.note("memo", "root_hit");
                return EvalOutcome {
                    answers: hit.iter().copied().collect(),
                    counters: Counters::new(),
                    converged: true,
                    graph_nodes: 0,
                    instances: 0,
                    memo_teleports: 1,
                    iteration_stats: Vec::new(),
                    graph: None,
                };
            }
        }
        let start_state = plan.machines[root_machine as usize].start as u32;
        let (outcome, stopped_early) =
            self.traverse_from(root_machine, &[(start_state, a)], options, ctx, None);
        if let Some(ctx) = ctx {
            // Record only naturally converged, untruncated runs: those
            // are complete fixpoint answer sets, the only thing the
            // epoch memo may hold.
            if outcome.converged && !stopped_early {
                ctx.record(plan.id, root_machine, a, &outcome.answers);
            }
        }
        if span.active() {
            span.note("nodes", outcome.graph_nodes);
            span.note("instances", outcome.instances);
            span.note("iterations", outcome.counters.iterations);
            span.note("memo_teleports", outcome.memo_teleports);
            span.note("answers", outcome.answers.len());
            span.note("converged", outcome.converged);
        }
        outcome
    }

    /// The main loop of Figures 4–5, generalized over its entry points:
    /// seed the traversal at arbitrary `(state, term)` nodes of
    /// `root_machine` instead of only at `(start, a)`.  Point queries
    /// seed the machine's start state; the delta-repair closures seed
    /// the states a new tuple's transition touches (backward closures
    /// run the partner machine).  `banned` machines are excluded from
    /// memo teleports — during a repair their memo entries are the very
    /// thing being patched, so routing through them would read stale
    /// answers.  Returns the outcome plus whether the run stopped early
    /// on `stop_on_answer`.
    fn traverse_from(
        &self,
        root_machine: u32,
        seeds: &[(u32, Const)],
        options: &EvalOptions,
        ctx: Option<&EvalContext>,
        banned: Option<&FxHashSet<u32>>,
    ) -> (EvalOutcome, bool) {
        let plan = self.plan.get();
        let mut counters = Counters::new();
        let mut iteration_stats = Vec::new();
        let mut memo_teleports = 0u64;

        // Parallelism applies per traversal phase; a recorded graph
        // forces the sequential path (arc attribution is inherently
        // ordered).
        let workers = if options.record_graph {
            1
        } else {
            rq_common::capped_threads(options.expand_threads.max(1))
        };
        let mut instances: Vec<Instance> = vec![Instance {
            machine: root_machine,
            exit: None,
        }];
        // (instance, state, transition ordinal) → child.
        let mut expansions: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        // G: the node set.  Starts in the plain representation and is
        // upgraded to the sharded one by the first phase that fans
        // out, so small traversals never touch a mutex.
        let mut graph = Graph::Seq(FxHashSet::default());
        // C: continuation terms per (instance, state).
        let mut continuations: FxHashMap<(u32, u32), FxHashSet<Const>> = FxHashMap::default();
        let mut answers: FxHashSet<Const> = FxHashSet::default();

        // S: starting points of the current iteration.
        let root_start: Node = (0, seeds[0].0, seeds[0].1);
        let mut starts: Vec<Node> = seeds.iter().map(|&(q, c)| (0, q, c)).collect();
        let mut arcs: Vec<DumpArc> = Vec::new();
        // Arcs from the expansion phase (enter edges), keyed by target
        // start node so they are attributed when the node is seeded.
        let mut enter_arcs: Vec<DumpArc> = Vec::new();

        let mut converged = false;
        let mut stopped_early = false;
        loop {
            counters.iterations += 1;
            let nodes_before = graph.len() as u64;
            // Seed this iteration's work-list with the unvisited
            // starts.
            let mut seeds: Vec<Node> = Vec::new();
            for node in starts.drain(..) {
                if graph.insert(node) {
                    counters.nodes_inserted += 1;
                    seeds.push(node);
                }
            }
            // Traversal phase: depth-first expansion of the work-list,
            // sequential or fanned out across scoped workers sharing
            // the visit-once node set.  Instances and expansions are
            // immutable for the whole phase.
            let step = StepCtx {
                plan,
                instances: &instances,
                expansions: &expansions,
                stop_on_answer: options.stop_on_answer,
                record_graph: options.record_graph,
            };
            let worklist = seeds.len() as u64;
            let phase_workers = if seeds.len() >= PARALLEL_MIN_SEEDS {
                workers.min(seeds.len())
            } else {
                1
            };
            let stopped = if phase_workers > 1 {
                graph.ensure_sharded();
                let Graph::Par(nodes) = &graph else {
                    unreachable!("parallel phases run on the sharded node set")
                };
                traverse_parallel(
                    &step,
                    self.source,
                    nodes,
                    seeds,
                    phase_workers,
                    &mut answers,
                    &mut continuations,
                    &mut counters,
                )
            } else {
                let mut stack = seeds;
                let mut succ_buf: Vec<Const> = Vec::new();
                let mut stopped = false;
                while let Some(node) = stack.pop() {
                    if expand_node(
                        &step,
                        self.source,
                        node,
                        &mut graph,
                        &mut stack,
                        &mut answers,
                        &mut continuations,
                        &mut counters,
                        &mut succ_buf,
                        &mut arcs,
                    ) {
                        stopped = true;
                        break;
                    }
                }
                stopped
            };
            if stopped {
                // Membership established (`stop_on_answer`): the
                // partial answer set already decides the query.
                converged = true;
                stopped_early = true;
                break;
            }

            if options.record_iterations {
                iteration_stats.push(IterationStat {
                    new_nodes: graph.len() as u64 - nodes_before,
                    answers_so_far: answers.len() as u64,
                    continuations: continuations.values().map(|s| s.len() as u64).sum(),
                    worklist,
                });
            }

            if continuations.is_empty() {
                converged = true;
                break;
            }
            if let Some(limit) = options.max_iterations {
                if counters.iterations >= limit {
                    break;
                }
            }
            if let Some(budget) = options.node_budget {
                if graph.len() as u64 >= budget {
                    break;
                }
            }

            // Expansion phase: for every pending (instance, state) and
            // every derived transition out of that state, splice a
            // fresh copy and seed S with its start nodes.  The
            // work-list is sorted so instance numbering is independent
            // of hash-map and thread-schedule order.
            let mut pending: Vec<((u32, u32), Vec<Const>)> = continuations
                .drain()
                .map(|(key, terms)| {
                    let mut terms: Vec<Const> = terms.into_iter().collect();
                    terms.sort_unstable();
                    (key, terms)
                })
                .collect();
            pending.sort_unstable_by_key(|&(key, _)| key);
            for ((inst, state), terms) in pending {
                let machine_id = instances[inst as usize].machine;
                let trans: Vec<(u32, Label, usize)> = plan.machines[machine_id as usize].trans
                    [state as usize]
                    .iter()
                    .enumerate()
                    .map(|(i, &(l, t))| (i as u32, l, t))
                    .collect();
                for (t_idx, label, to) in trans {
                    let (r, child_inverted) = match label {
                        Label::Sym(r) if plan.derived.contains(&r) => (r, false),
                        Label::Inv(r) if plan.derived.contains(&r) => (r, true),
                        _ => continue,
                    };
                    let child_machine = self.machine_id(r, child_inverted);
                    // Epoch memo: a term whose complete sub-answer set
                    // is already known routes those answers straight to
                    // the parent's continuation state — the whole child
                    // sub-traversal is skipped.  Sound because entries
                    // are complete fixpoint answer sets over the same
                    // database version (see [`EvalContext`]).
                    // During a repair the affected machines' own memo
                    // entries are the stale state being patched, so
                    // teleports through them are banned.
                    let teleportable = banned.is_none_or(|b| !b.contains(&child_machine));
                    let mut fresh: Vec<Const> = Vec::with_capacity(terms.len());
                    for &u in &terms {
                        let hit = if teleportable {
                            ctx.and_then(|ctx| ctx.lookup(plan.id, child_machine, u))
                        } else {
                            None
                        };
                        if let Some(sub) = hit {
                            memo_teleports += 1;
                            for &v in sub.iter() {
                                starts.push((inst, to as u32, v));
                            }
                            continue;
                        }
                        fresh.push(u);
                    }
                    if fresh.is_empty() {
                        continue;
                    }
                    let child = *expansions.entry((inst, state, t_idx)).or_insert_with(|| {
                        let id = instances.len() as u32;
                        instances.push(Instance {
                            machine: child_machine,
                            exit: Some((inst, to as u32)),
                        });
                        id
                    });
                    let child_start =
                        plan.machines[instances[child as usize].machine as usize].start as u32;
                    for u in fresh {
                        let node = (child, child_start, u);
                        if options.record_graph {
                            enter_arcs.push(((inst, state, u), ArcKind::Enter(r), node));
                        }
                        starts.push(node);
                    }
                }
            }
        }

        let dump = options.record_graph.then(|| {
            arcs.extend(enter_arcs);
            let Graph::Seq(node_set) = &graph else {
                unreachable!("recorded graphs run sequentially")
            };
            let answer_nodes: Vec<Node> = node_set
                .iter()
                .copied()
                .filter(|&(i, q, _)| {
                    i == 0 && q as usize == plan.machines[root_machine as usize].finish
                })
                .collect();
            GraphDump {
                arcs,
                start: root_start,
                answer_nodes,
            }
        });
        let outcome = EvalOutcome {
            answers,
            counters,
            converged,
            graph_nodes: graph.len() as u64,
            instances: instances.len() as u64,
            memo_teleports,
            iteration_stats,
            graph: dump,
        };
        (outcome, stopped_early)
    }

    /// Semi-naive delta repair: given the per-predicate tuple pairs a
    /// publish **added** and this evaluator's [`EvalContext`], extend
    /// every affected memo entry's answer set in place instead of
    /// discarding it.  The source this evaluator wraps must already
    /// read the **new** database version.
    ///
    /// New tuples only ever add derivation paths (ingests are monotone:
    /// no deletions, no rule changes), so each converged answer set is
    /// repaired by closing over the new paths:
    ///
    /// 1. every delta tuple lights up the base-label transitions that
    ///    read its predicate, giving *frontier edges* `(s, u) → (t, v)`
    ///    inside each affected machine;
    /// 2. a backward closure in the partner (inverse) machine finds the
    ///    entry terms `α` that reach the edge, and a forward closure
    ///    from its head finds the finish terms `w` it now proves — both
    ///    run the full generalized traversal over the new database, so
    ///    spliced sub-machines see the delta too;
    /// 3. each genuinely new pair `(α, w)` of a machine is lifted onto
    ///    the derived-label transitions that splice that machine,
    ///    becoming the next round's frontier — rounds peel one level of
    ///    recursion nesting and stop when nothing new appears.
    ///
    /// Memo teleports through affected machines are banned while the
    /// closures run (their entries are the stale state being patched).
    /// If any closure fails to converge within `options`' budgets, or
    /// the round cap trips, the affected entries are purged instead and
    /// `repaired: false` tells the caller to fall back cold.
    pub fn repair(
        &self,
        delta: &FxHashMap<Pred, Vec<(Const, Const)>>,
        options: &EvalOptions,
    ) -> RepairOutcome {
        let Some(ctx) = self.ctx else {
            return RepairOutcome {
                repaired: true,
                ..RepairOutcome::default()
            };
        };
        let plan = self.plan.get();
        let dirty: FxHashSet<Pred> = delta.keys().copied().collect();
        let affected = plan.affected_machines(&dirty);
        let roots = ctx.roots_for(plan.id, &affected);
        if affected.is_empty() || roots.is_empty() {
            return RepairOutcome {
                repaired: true,
                ..RepairOutcome::default()
            };
        }
        let span = rq_common::obs::span("engine.repair");
        // Snapshot the pre-repair entries: a pair already present was
        // propagated by the old fixpoint (parents reflect all its
        // consequences), so it neither re-frontiers nor needs patching.
        let mut old_entries: FxHashMap<(u32, Const), Arc<Vec<Const>>> = FxHashMap::default();
        for &(m, c) in &roots {
            if let Some(entry) = ctx.peek(plan.id, m, c) {
                old_entries.insert((m, c), entry);
            }
        }
        let closure_options = EvalOptions {
            stop_on_answer: None,
            record_iterations: false,
            record_graph: false,
            ..options.clone()
        };
        let routes = plan.derived_routes();

        // (machine, entry term) → new finish terms accumulated so far.
        let mut additions: FxHashMap<(u32, Const), FxHashSet<Const>> = FxHashMap::default();
        // Frontier edges (machine, tail state, head state, tail term,
        // head term).  Round 1: the delta tuples themselves, oriented
        // by the transition label that reads them.
        let mut frontier: Vec<(u32, u32, u32, Const, Const)> = Vec::new();
        for (mi, m) in plan.machines.iter().enumerate() {
            for (s, trans) in m.trans.iter().enumerate() {
                for &(label, t) in trans {
                    let (r, inverted) = match label {
                        Label::Sym(r) => (r, false),
                        Label::Inv(r) => (r, true),
                        Label::Id => continue,
                    };
                    if plan.derived.contains(&r) {
                        continue;
                    }
                    let Some(pairs) = delta.get(&r) else { continue };
                    for &(u, v) in pairs {
                        let (tail, head) = if inverted { (v, u) } else { (u, v) };
                        frontier.push((mi as u32, s as u32, t as u32, tail, head));
                    }
                }
            }
        }

        // Closure answer sets are shared across frontier edges with the
        // same (machine, state, term) seed; `None` marks a closure the
        // budgets truncated.
        let mut closures = ClosureCache::default();
        let mut failed = false;
        let mut rounds = 0u32;
        'rounds: while !frontier.is_empty() {
            rounds += 1;
            if rounds > MAX_REPAIR_ROUNDS {
                failed = true;
                break;
            }
            let mut new_pairs: Vec<(u32, Const, Const)> = Vec::new();
            for (mi, s, t, tail, head) in std::mem::take(&mut frontier) {
                // Entry terms that reach the edge's tail: forward
                // closure in the partner machine (invert_nfa preserves
                // state indices and collects at its finish = our start).
                let Some(entries) = self.repair_closure(
                    &mut closures,
                    mi ^ 1,
                    s,
                    tail,
                    &closure_options,
                    ctx,
                    &affected,
                ) else {
                    failed = true;
                    break 'rounds;
                };
                if entries.is_empty() {
                    continue;
                }
                let Some(finishes) = self.repair_closure(
                    &mut closures,
                    mi,
                    t,
                    head,
                    &closure_options,
                    ctx,
                    &affected,
                ) else {
                    failed = true;
                    break 'rounds;
                };
                for &alpha in entries.iter() {
                    for &w in finishes.iter() {
                        let known = old_entries
                            .get(&(mi, alpha))
                            .is_some_and(|e| e.binary_search(&w).is_ok());
                        if known {
                            continue;
                        }
                        if additions.entry((mi, alpha)).or_default().insert(w) {
                            new_pairs.push((mi, alpha, w));
                        }
                    }
                }
            }
            // Lift: a new pair of machine `mc` becomes a frontier edge
            // on every derived transition that splices `mc`.
            for (mc, alpha, w) in new_pairs {
                if let Some(rs) = routes.get(&mc) {
                    for &(mi, s, t) in rs {
                        frontier.push((mi, s, t, alpha, w));
                    }
                }
            }
        }

        if failed {
            let purged = ctx.purge(plan.id, &affected) as u64;
            span.note("fallback", true);
            span.note("purged", purged);
            return RepairOutcome {
                purged_entries: purged,
                ..RepairOutcome::default()
            };
        }
        let mut out = RepairOutcome {
            repaired: true,
            ..RepairOutcome::default()
        };
        for ((machine, from), to) in additions {
            let added = ctx.patch(plan.id, machine, from, &to);
            if added > 0 {
                out.patched_entries += 1;
                out.added_rows += added;
            }
        }
        if span.active() {
            span.note("rounds", rounds);
            span.note("patched", out.patched_entries);
            span.note("rows", out.added_rows);
        }
        out
    }

    /// One repair closure: the complete answer set of `machine` seeded
    /// at `(state, term)`, memoized across frontier edges.  Returns
    /// `None` when the traversal's budgets truncated it (partial sets
    /// must never be patched into the memo).
    #[allow(clippy::too_many_arguments)]
    fn repair_closure(
        &self,
        cache: &mut ClosureCache,
        machine: u32,
        state: u32,
        term: Const,
        options: &EvalOptions,
        ctx: &EvalContext,
        banned: &FxHashSet<u32>,
    ) -> Option<Arc<FxHashSet<Const>>> {
        if let Some(hit) = cache.get(&(machine, state, term)) {
            return hit.clone();
        }
        let (outcome, _) =
            self.traverse_from(machine, &[(state, term)], options, Some(ctx), Some(banned));
        let result = outcome.converged.then(|| Arc::new(outcome.answers));
        cache.insert((machine, state, term), result.clone());
        result
    }
}

/// What [`Evaluator::repair`] did to the epoch memo.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Memo entries whose answer sets grew.
    pub patched_entries: u64,
    /// Total answers added across patched entries.
    pub added_rows: u64,
    /// Entries purged because the repair fell back (0 on success).
    pub purged_entries: u64,
    /// Whether the memo is again complete for the new database version.
    /// `false` means the affected entries were purged instead and the
    /// caller should treat the plan as cold.
    pub repaired: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::EdbSource;
    use rq_datalog::{parse_program, Database};
    use rq_relalg::{lemma1, Lemma1Options};

    fn run(src: &str, query_pred: &str, from: &str) -> (rq_datalog::Program, EvalOutcome) {
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let p = program.pred_by_name(query_pred).unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str(from.into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(p, a, &EvalOptions::default());
        (program, out)
    }

    fn names(program: &rq_datalog::Program, set: &FxHashSet<Const>) -> Vec<String> {
        let mut v: Vec<String> = set.iter().map(|&c| program.consts.display(c)).collect();
        v.sort();
        v
    }

    #[test]
    fn shared_plan_matches_owned_plan_and_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<CompiledPlan>();
        // An evaluator over a Sync source is itself shareable across
        // scoped threads — the property the batch service relies on.
        assert_sync::<Evaluator<'_, EdbSource<'_>>>();

        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
                   down(b2,b1). down(b1,b).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let plan = CompiledPlan::compile(&sys);
        assert_eq!(plan.machine_count(), 2); // sg forward + inverse
        let owned = Evaluator::new(&sys, &source).evaluate(sg, a, &EvalOptions::default());
        // One plan, several evaluators, concurrent queries.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let shared = Evaluator::with_plan(&sys, &plan, &source);
                    let out = shared.evaluate(sg, a, &EvalOptions::default());
                    assert_eq!(out.answers, owned.answers);
                    assert_eq!(out.graph_nodes, owned.graph_nodes);
                });
            }
        });
    }

    #[test]
    fn compacted_machines_same_answers_fewer_nodes() {
        // A union-heavy program: Thompson glue states cost one graph
        // node per constant funneled through them.
        let mut src = String::from(
            "r(X,Y) :- a(X,Y).\n\
             r(X,Y) :- b(X,Y).\n\
             r(X,Y) :- c(X,Y).\n\
             r(X,Z) :- a(X,Y), r(Y,Z).\n",
        );
        for i in 0..20 {
            src.push_str(&format!("a(v{}, v{}).\n", i, i + 1));
            src.push_str(&format!("b(v{}, w{}).\n", i, i));
            src.push_str(&format!("c(w{}, v{}).\n", i, i));
        }
        let program = parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let r = program.pred_by_name("r").unwrap();
        let v0 = program
            .consts
            .get(&rq_common::ConstValue::Str("v0".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let plain = Evaluator::new(&sys, &source).evaluate(r, v0, &EvalOptions::default());
        let compacted =
            Evaluator::new_compacted(&sys, &source).evaluate(r, v0, &EvalOptions::default());
        assert_eq!(plain.answers, compacted.answers);
        assert!(
            compacted.graph_nodes < plain.graph_nodes,
            "compacted {} !< plain {}",
            compacted.graph_nodes,
            plain.graph_nodes
        );
    }

    #[test]
    fn compacted_machines_agree_on_linear_case() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
                   down(b2,b1). down(b1,b).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let plain = Evaluator::new(&sys, &source).evaluate(sg, a, &EvalOptions::default());
        let compacted =
            Evaluator::new_compacted(&sys, &source).evaluate(sg, a, &EvalOptions::default());
        assert_eq!(plain.answers, compacted.answers);
        assert_eq!(
            plain.counters.iterations, compacted.counters.iterations,
            "compaction must not change the iteration structure"
        );
    }

    #[test]
    fn regular_closure_single_iteration() {
        let (p, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(x,y).",
            "tc",
            "a",
        );
        assert_eq!(names(&p, &out.answers), vec!["b", "c", "d"]);
        assert!(out.converged);
        // Regular case: exactly one iteration (Theorem 3).
        assert_eq!(out.counters.iterations, 1);
        assert_eq!(out.instances, 1);
    }

    #[test]
    fn regular_closure_on_cycle() {
        let (p, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,a).",
            "tc",
            "a",
        );
        // Reaches everything including a itself.
        assert_eq!(names(&p, &out.answers), vec!["a", "b", "c"]);
        assert!(out.converged);
    }

    #[test]
    fn same_generation_linear_case() {
        let (p, out) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg",
            "a",
        );
        // flat(a,z) at level 0; up²·flat·down² gives b.
        assert_eq!(names(&p, &out.answers), vec!["b", "z"]);
        assert!(out.converged);
        // Needs 3 iterations: levels 0, 1, 2 of the recursion.
        assert_eq!(out.counters.iterations, 3);
    }

    #[test]
    fn demand_driven_ignores_unreachable_facts() {
        // Facts not reachable from the query constant must never be
        // retrieved (the demand-driven property).
        let (p, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b).\n\
             e(u1,u2). e(u2,u3). e(u3,u4). e(u4,u5).",
            "tc",
            "a",
        );
        assert_eq!(names(&p, &out.answers), vec!["b"]);
        // Only a's edge plus b's (empty) probe are touched.
        assert!(out.counters.tuples_retrieved <= 2);
    }

    #[test]
    fn nonconvergent_cycle_respects_bound() {
        // up cycle of length 2, down cycle of length 3, flat at one spot:
        // needs 6 iterations (Figure 8 with m=2, n=3).
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a1,a2). up(a2,a1).\n\
                   flat(a1,b1).\n\
                   down(b1,b2). down(b2,b3). down(b3,b1).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a1 = program
            .consts
            .get(&rq_common::ConstValue::Str("a1".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        // With bound m·n + 1 = 7 the answer is complete:
        // up^k(a1)=a1 for even k; down^k(b1) cycles with period 3 →
        // answers are down^{even k}(b1) = {b1, b3, b2} for k=0,2,4.
        let out = ev.evaluate(
            sg,
            a1,
            &EvalOptions {
                max_iterations: Some(7),
                record_iterations: true,
                ..EvalOptions::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(names(&program, &out.answers), vec!["b1", "b2", "b3"]);
    }

    #[test]
    fn inverse_query() {
        let (p, out) = {
            let src = "tc(X,Y) :- e(X,Y).\n\
                       tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                       e(a,b). e(b,c). e(z,c).";
            let program = parse_program(src).unwrap();
            let db = Database::from_program(&program);
            let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
            let tc = program.pred_by_name("tc").unwrap();
            let c = program
                .consts
                .get(&rq_common::ConstValue::Str("c".into()))
                .unwrap();
            let source = EdbSource::new(&db);
            let ev = Evaluator::new(&sys, &source);
            let out = ev.evaluate_inverse(tc, c, &EvalOptions::default());
            (program, out)
        };
        // All X with tc(X, c): a, b, z.
        assert_eq!(names(&p, &out.answers), vec!["a", "b", "z"]);
    }

    #[test]
    fn nonregular_mutual_recursion() {
        // Naughton's example [15]: p(X,Y) :- b0(X,Y);
        // p(X,Y) :- b1(X,Z), p(Y,Z) — not a binary-chain program as
        // written, but its §4 transform is; here we test the hand-built
        // equivalent equation system q2 = r2 ∪ a·q2·r1 instead.
        let src = "q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
                   q2(X,Y) :- r2(X,Y).\n\
                   q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
                   a(s,t). a(t,u).\n\
                   r2(u,v).\n\
                   r1(v,w). r1(w,x0).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let q1 = program.pred_by_name("q1").unwrap();
        let s = program
            .consts
            .get(&rq_common::ConstValue::Str("s".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(q1, s, &EvalOptions::default());
        // q1(s,?): a(s,t), q2(t,?): q1(t,?)·r1 → a(t,u), q2(u,v)=r2,
        // then r1(v,w) → q2(t,w) → q1 path gives q1(s, x0)? Compare with
        // naive evaluation.
        let naive = rq_datalog::naive_eval(&program).unwrap();
        let expected: Vec<String> = {
            let mut v: Vec<String> = naive
                .tuples(q1)
                .into_iter()
                .filter(|t| t[0] == s)
                .map(|t| program.consts.display(t[1]))
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&program, &out.answers), expected);
        assert!(out.converged);
    }

    #[test]
    fn graph_dump_matches_node_count() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). flat(a1,b1). down(b1,b). flat(a,z).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(
            sg,
            a,
            &EvalOptions {
                record_graph: true,
                ..EvalOptions::default()
            },
        );
        let dump = out.graph.expect("recorded");
        // Every node of G appears in the dump (the dump also sees the
        // start node even if isolated).
        assert_eq!(dump.node_count() as u64, out.graph_nodes);
        // Answers appear as final-state nodes of the root instance.
        assert_eq!(dump.answer_nodes.len(), out.answers.len());
        let dot = dump.to_dot(&|c| program.consts.display(c), &|q| {
            program.pred_name(q).to_string()
        });
        assert!(dot.contains("digraph"));
        assert!(dot.contains("up"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn answers_monotone_across_iterations() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). up(a2,a3).\n\
                   flat(a,b0). flat(a1,b1). flat(a2,b2). flat(a3,b3).\n\
                   down(b1,c1). down(b2,x1). down(x1,c2). down(b3,y1). down(y1,y2). down(y2,c3).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(
            sg,
            a,
            &EvalOptions {
                max_iterations: None,
                record_iterations: true,
                ..EvalOptions::default()
            },
        );
        assert!(out.converged);
        // Lemma 2(1): the partial answer set grows monotonically and each
        // level contributes sg_i's new answers.
        let answers: Vec<u64> = out
            .iteration_stats
            .iter()
            .map(|s| s.answers_so_far)
            .collect();
        assert!(answers.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*answers.last().unwrap() as usize, out.answers.len());
        assert_eq!(names(&program, &out.answers), vec!["b0", "c1", "c2", "c3"]);
    }

    /// Shared fixture for the repair tests: compile one plan for `src`,
    /// warm-evaluate `queries` against `src`'s facts recording into a
    /// context, then hand back everything needed to repair against the
    /// extended database `src + delta_facts`.
    fn repair_fixture(
        src: &str,
        delta_facts: &str,
    ) -> (rq_datalog::Program, Database, Database, rq_relalg::EqSystem) {
        let program = parse_program(src).unwrap();
        let db_old = Database::from_program(&program);
        let extended = parse_program(&format!("{src}\n{delta_facts}")).unwrap();
        // Appending facts that reuse existing constants keeps pred and
        // const ids identical across the two programs.
        assert_eq!(program.preds.len(), extended.preds.len());
        assert_eq!(program.consts.len(), extended.consts.len());
        let db_new = Database::from_program(&extended);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        (program, db_old, db_new, sys)
    }

    #[test]
    fn repair_extends_a_chain_memo_to_match_cold_reevaluation() {
        let (program, db_old, db_new, sys) = repair_fixture(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(d,f).",
            "e(c,d).",
        );
        let plan = CompiledPlan::compile(&sys);
        let ctx = EvalContext::new();
        let tc = program.pred_by_name("tc").unwrap();
        let e = program.pred_by_name("e").unwrap();
        let get = |n: &str| {
            program
                .consts
                .get(&rq_common::ConstValue::Str(n.into()))
                .unwrap()
        };
        let (a, c, d) = (get("a"), get("c"), get("d"));
        let opts = EvalOptions::default();

        let old_source = EdbSource::new(&db_old);
        let warm = Evaluator::with_plan(&sys, &plan, &old_source).with_context(&ctx);
        let before = warm.evaluate(tc, a, &opts);
        assert_eq!(names(&program, &before.answers), vec!["b", "c"]);
        assert!(warm.evaluate_inverse(tc, d, &opts).converged);

        // The publish adds e(c,d): a is now connected to d and f.
        let mut delta: FxHashMap<Pred, Vec<(Const, Const)>> = FxHashMap::default();
        delta.insert(e, vec![(c, d)]);
        let new_source = EdbSource::new(&db_new);
        let repaired = Evaluator::with_plan(&sys, &plan, &new_source)
            .with_context(&ctx)
            .repair(&delta, &opts);
        assert!(repaired.repaired);
        assert!(repaired.patched_entries >= 2, "forward and inverse roots");
        assert!(repaired.added_rows >= 2);

        // The repaired entries answer straight from the memo and match
        // a cold evaluation over the new database exactly.
        let post = Evaluator::with_plan(&sys, &plan, &new_source)
            .with_context(&ctx)
            .evaluate(tc, a, &opts);
        assert_eq!(post.memo_teleports, 1, "root memo hit");
        assert_eq!(post.graph_nodes, 0);
        let cold = Evaluator::with_plan(&sys, &plan, &new_source).evaluate(tc, a, &opts);
        assert_eq!(
            names(&program, &post.answers),
            names(&program, &cold.answers)
        );
        assert_eq!(names(&program, &post.answers), vec!["b", "c", "d", "f"]);
        let post_inv = Evaluator::with_plan(&sys, &plan, &new_source)
            .with_context(&ctx)
            .evaluate_inverse(tc, d, &opts);
        let cold_inv =
            Evaluator::with_plan(&sys, &plan, &new_source).evaluate_inverse(tc, d, &opts);
        assert_eq!(
            names(&program, &post_inv.answers),
            names(&program, &cold_inv.answers)
        );
    }

    /// Naughton's nonregular mutual recursion: q2 = r2 ∪ a·q2·r1.  The
    /// machines splice each other, so repairing the memoized `q1(s, Y)`
    /// entry after an `a` delta needs the full pipeline: closures that
    /// cross derived transitions (splicing sub-machines against the new
    /// database) and several lift rounds to carry new `q2` pairs up
    /// into `q1`'s entry.
    const NAUGHTON_SRC: &str = "q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
        q2(X,Y) :- r2(X,Y).\n\
        q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
        a(s,t). a(t,u).\n\
        r2(u,v). r1(v,w). r1(w,x0).\n\
        r2(u2,v2). r1(v2,w2). r1(w2,x2).";

    #[test]
    fn repair_lifts_delta_pairs_through_spliced_machines() {
        // The delta edge a(u,u2) connects the reachable region to the
        // dormant u2 branch: q1(s, Y) gains x2 only through derivations
        // nested several splices deep.
        let (program, db_old, db_new, sys) = repair_fixture(NAUGHTON_SRC, "a(u,u2).");
        let plan = CompiledPlan::compile(&sys);
        let ctx = EvalContext::new();
        let q1 = program.pred_by_name("q1").unwrap();
        let a_pred = program.pred_by_name("a").unwrap();
        let get = |n: &str| {
            program
                .consts
                .get(&rq_common::ConstValue::Str(n.into()))
                .unwrap()
        };
        let (s, u, u2) = (get("s"), get("u"), get("u2"));
        let opts = EvalOptions::default();

        let old_source = EdbSource::new(&db_old);
        let before = Evaluator::with_plan(&sys, &plan, &old_source)
            .with_context(&ctx)
            .evaluate(q1, s, &opts);
        assert!(before.converged);

        let mut delta: FxHashMap<Pred, Vec<(Const, Const)>> = FxHashMap::default();
        delta.insert(a_pred, vec![(u, u2)]);
        let new_source = EdbSource::new(&db_new);
        let repaired = Evaluator::with_plan(&sys, &plan, &new_source)
            .with_context(&ctx)
            .repair(&delta, &opts);
        assert!(repaired.repaired);
        assert!(repaired.added_rows >= 1);

        let post = Evaluator::with_plan(&sys, &plan, &new_source)
            .with_context(&ctx)
            .evaluate(q1, s, &opts);
        assert_eq!(post.memo_teleports, 1, "root memo hit");
        assert_eq!(post.graph_nodes, 0);
        let cold = Evaluator::with_plan(&sys, &plan, &new_source).evaluate(q1, s, &opts);
        assert_eq!(
            names(&program, &post.answers),
            names(&program, &cold.answers)
        );
        assert!(
            post.answers.len() > before.answers.len(),
            "the delta must actually extend the answer set"
        );
    }

    #[test]
    fn truncated_repair_purges_instead_of_patching() {
        let (program, db_old, db_new, sys) = repair_fixture(NAUGHTON_SRC, "a(u,u2).");
        let plan = CompiledPlan::compile(&sys);
        let ctx = EvalContext::new();
        let q1 = program.pred_by_name("q1").unwrap();
        let a_pred = program.pred_by_name("a").unwrap();
        let get = |n: &str| {
            program
                .consts
                .get(&rq_common::ConstValue::Str(n.into()))
                .unwrap()
        };
        let (s, u, u2) = (get("s"), get("u"), get("u2"));

        let old_source = EdbSource::new(&db_old);
        Evaluator::with_plan(&sys, &plan, &old_source)
            .with_context(&ctx)
            .evaluate(q1, s, &EvalOptions::default());
        assert_eq!(ctx.stats().entries, 1);

        // One iteration is not enough for closures that must splice a
        // sub-machine, so the repair cannot complete — the stale entry
        // must be purged, never half-patched.
        let mut delta: FxHashMap<Pred, Vec<(Const, Const)>> = FxHashMap::default();
        delta.insert(a_pred, vec![(u, u2)]);
        let new_source = EdbSource::new(&db_new);
        let repaired = Evaluator::with_plan(&sys, &plan, &new_source)
            .with_context(&ctx)
            .repair(
                &delta,
                &EvalOptions {
                    max_iterations: Some(1),
                    ..EvalOptions::default()
                },
            );
        assert!(!repaired.repaired);
        assert_eq!(repaired.purged_entries, 1);
        assert_eq!(repaired.patched_entries, 0);
        assert_eq!(ctx.stats().entries, 0);
    }

    #[test]
    fn repair_without_affected_entries_is_a_no_op() {
        let (program, db_old, _db_new, sys) = repair_fixture(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). g(b,c).",
            "g(a,c).",
        );
        let plan = CompiledPlan::compile(&sys);
        let ctx = EvalContext::new();
        let tc = program.pred_by_name("tc").unwrap();
        let g = program.pred_by_name("g").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let c = program
            .consts
            .get(&rq_common::ConstValue::Str("c".into()))
            .unwrap();
        let opts = EvalOptions::default();
        let old_source = EdbSource::new(&db_old);
        let ev = Evaluator::with_plan(&sys, &plan, &old_source).with_context(&ctx);
        ev.evaluate(tc, a, &opts);

        // g is not read by tc's machines: nothing is affected, nothing
        // is touched.
        let mut delta: FxHashMap<Pred, Vec<(Const, Const)>> = FxHashMap::default();
        delta.insert(g, vec![(a, c)]);
        let repaired = ev.repair(&delta, &opts);
        assert!(repaired.repaired);
        assert_eq!(
            repaired,
            RepairOutcome {
                repaired: true,
                ..RepairOutcome::default()
            }
        );
        assert_eq!(ctx.stats().entries, 1);
    }
}
