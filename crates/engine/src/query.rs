//! The five query forms of §3 and the cyclic-data iteration bound.
//!
//! * `p(a, Y)` — the primary form: traverse from `a`.
//! * `p(X, b)` — "simply apply the algorithm to the query r(b, Y), where
//!   r is the inverse of p": traverse the inverted machine from `b`.
//! * `p(X, Y)` — "apply the algorithm to the query p(a,Y) for all terms a
//!   in the domain of p"; duplication between overlapping graphs is
//!   avoided with Tarjan's strong-components algorithm (see
//!   [`all_pairs_scc`], for the regular case).
//! * `p(a, b)` — evaluate `p(a, Y)` and test membership (the binding of
//!   the second argument cannot be used without the §4 transformation).
//! * `p(X, X)` — evaluate all pairs and keep the diagonal.

use crate::source::{EdbSource, TupleSource};
use crate::traversal::{EvalOptions, EvalOutcome, Evaluator};
use rq_automata::{thompson, Label};
use rq_common::{Const, Counters, FxHashMap, FxHashSet, Pred};
use rq_datalog::tarjan_scc;
use rq_relalg::{linear_decomposition, EqSystem, Expr, ImageEval};

/// Candidate source constants for an all-pairs query: every constant with
/// an outgoing transition from the start state's ε-closure — a superset
/// of the domain of `p` that the machine can actually leave the start on.
pub fn candidate_sources<S: TupleSource>(system: &EqSystem, source: &S, p: Pred) -> Vec<Const> {
    // Collect the base predicates (forward or inverse) reachable as *first
    // letters* of e_p, unfolding derived predicates.
    let derived = system.derived();
    let mut first: FxHashSet<(Pred, bool)> = FxHashSet::default();
    let mut seen: FxHashSet<(Pred, bool)> = FxHashSet::default();
    let mut stack: Vec<(Pred, bool)> = vec![(p, false)];
    while let Some((q, inv)) = stack.pop() {
        if !seen.insert((q, inv)) {
            continue;
        }
        let e = if inv {
            system.rhs[&q].inverse()
        } else {
            system.rhs[&q].clone()
        };
        let nfa = thompson(&e);
        for state in nfa.epsilon_closure([nfa.start]) {
            for &(label, _) in &nfa.trans[state] {
                match label {
                    Label::Sym(r) if derived.contains(&r) => stack.push((r, false)),
                    Label::Inv(r) if derived.contains(&r) => stack.push((r, true)),
                    Label::Sym(r) => {
                        first.insert((r, false));
                    }
                    Label::Inv(r) => {
                        first.insert((r, true));
                    }
                    Label::Id => {}
                }
            }
        }
    }
    let mut out: Vec<Const> = Vec::new();
    let mut dedup: FxHashSet<Const> = FxHashSet::default();
    let mut buf = Vec::new();
    for (r, inv) in first {
        buf.clear();
        if inv {
            // Range of r = first column of its inverse.
            let mut counters = Counters::new();
            // Enumerate all second components by probing is wasteful;
            // sources expose only first_column, so use successors over
            // the first column.
            let mut firsts = Vec::new();
            source.first_column(r, &mut firsts);
            for u in firsts {
                source.successors(r, u, &mut buf, &mut counters);
            }
        } else {
            source.first_column(r, &mut buf);
        }
        for &c in &buf {
            if dedup.insert(c) {
                out.push(c);
            }
        }
    }
    out.sort();
    out
}

/// Answers of an all-pairs query.
#[derive(Clone, Debug, Default)]
pub struct AllPairsOutcome {
    /// `(x, y)` pairs in the answer.
    pub pairs: FxHashSet<(Const, Const)>,
    /// Aggregated instrumentation.
    pub counters: Counters,
    /// Whether every per-source evaluation converged.
    pub converged: bool,
}

/// `p(X, Y)` by running the traversal once per candidate source.
/// Correct for any system; duplicated work between overlapping graphs is
/// what [`all_pairs_scc`] removes in the regular case.
pub fn all_pairs_per_source<S: TupleSource>(
    evaluator: &Evaluator<'_, S>,
    source: &S,
    p: Pred,
    options: &EvalOptions,
) -> AllPairsOutcome {
    let mut out = AllPairsOutcome {
        converged: true,
        ..Default::default()
    };
    for a in candidate_sources(evaluator.system(), source, p) {
        let r = evaluator.evaluate(p, a, options);
        out.counters += r.counters;
        out.converged &= r.converged;
        for v in r.answers {
            out.pairs.insert((a, v));
        }
    }
    out
}

/// `p(X, Y)` for a *regular* system (no derived predicate occurs in
/// `e_p`), sharing work between sources with Tarjan's strong-components
/// algorithm, per the paper's reference to [19, 21]:
///
/// 1. build the product graph with nodes `(state, term)` reachable from
///    any `(q_s, a)`;
/// 2. condense it into strongly connected components;
/// 3. propagate answer sets (terms at `(q_f, ·)` nodes) backwards through
///    the condensation in one pass — every node of a component shares one
///    answer set, which is what kills the per-source duplication.
pub fn all_pairs_scc<S: TupleSource>(
    system: &EqSystem,
    source: &S,
    p: Pred,
    options: &EvalOptions,
) -> AllPairsOutcome {
    let e = &system.rhs[&p];
    let derived = system.derived();
    assert!(
        !e.contains_any(&derived),
        "all_pairs_scc requires a regular (derived-free) equation"
    );
    let workers = rq_common::capped_threads(options.expand_threads.max(1));
    let mut counters = Counters::new();
    let nfa = thompson(e);
    let sources: Vec<Const> = candidate_sources(system, source, p);

    // Phase 1: explicit product graph, nodes interned to dense ids.
    let mut node_id: FxHashMap<(u32, Const), usize> = FxHashMap::default();
    let mut nodes: Vec<(u32, Const)> = Vec::new();
    let mut succ: Vec<Vec<usize>> = Vec::new();
    let intern = |node: (u32, Const),
                  nodes: &mut Vec<(u32, Const)>,
                  succ: &mut Vec<Vec<usize>>,
                  node_id: &mut FxHashMap<(u32, Const), usize>|
     -> (usize, bool) {
        if let Some(&id) = node_id.get(&node) {
            return (id, false);
        }
        let id = nodes.len();
        nodes.push(node);
        succ.push(Vec::new());
        node_id.insert(node, id);
        (id, true)
    };
    let mut stack: Vec<usize> = Vec::new();
    let mut roots: Vec<(Const, usize)> = Vec::new();
    for &a in &sources {
        let (id, fresh) = intern((nfa.start as u32, a), &mut nodes, &mut succ, &mut node_id);
        roots.push((a, id));
        if fresh {
            counters.nodes_inserted += 1;
            stack.push(id);
        }
    }
    let mut buf: Vec<Const> = Vec::new();
    while let Some(id) = stack.pop() {
        let (state, term) = nodes[id];
        let row: Vec<(Label, usize)> = nfa.trans[state as usize].clone();
        for (label, to) in row {
            counters.rule_firings += 1;
            buf.clear();
            match label {
                Label::Id => buf.push(term),
                Label::Sym(r) => source.successors(r, term, &mut buf, &mut counters),
                Label::Inv(r) => source.predecessors(r, term, &mut buf, &mut counters),
            }
            for &v in buf.iter() {
                let (nid, fresh) = intern((to as u32, v), &mut nodes, &mut succ, &mut node_id);
                succ[id].push(nid);
                if fresh {
                    counters.nodes_inserted += 1;
                    stack.push(nid);
                }
            }
        }
    }

    // Phase 2: condensation.  Component ids come out in reverse
    // topological order, so ascending order is "callees first" — exactly
    // the order in which to accumulate answer sets.
    let (comp, ncomps) = tarjan_scc(&succ);

    // Phase 3: per-component answer sets, shared by all members.
    let mut comp_answers: Vec<FxHashSet<Const>> = vec![FxHashSet::default(); ncomps];
    let mut comp_succs: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); ncomps];
    for (id, outs) in succ.iter().enumerate() {
        for &to in outs {
            if comp[id] != comp[to] {
                comp_succs[comp[id]].insert(comp[to]);
            }
        }
    }
    for (id, &(state, term)) in nodes.iter().enumerate() {
        if state as usize == nfa.finish {
            comp_answers[comp[id]].insert(term);
        }
    }
    // Propagation is level-scheduled over the condensation: `level[c]`
    // is the longest successor chain below `c`, so every component at
    // one level depends only on strictly lower levels.  Components
    // within a level are therefore independent — their answer unions
    // read finalized sets — and a level with several components fans
    // out across scoped threads.  Computable in one ascending pass
    // because Tarjan emits components in reverse topological order
    // (every successor id is smaller).
    let mut level: Vec<u32> = vec![0; ncomps];
    for (c, csucc) in comp_succs.iter().enumerate() {
        for &s in csucc {
            debug_assert!(s < c, "component order must be reverse topological");
            level[c] = level[c].max(level[s] + 1);
        }
    }
    let mut by_level: Vec<Vec<usize>> = Vec::new();
    for c in 0..ncomps {
        let l = level[c] as usize;
        if by_level.len() <= l {
            by_level.resize(l + 1, Vec::new());
        }
        if !comp_succs[c].is_empty() {
            by_level[l].push(c);
        }
    }
    for work in &by_level {
        if workers > 1 && work.len() > 1 {
            let chunk_len = work.len().div_ceil(workers);
            let additions: Vec<(usize, FxHashSet<Const>, u64)> = std::thread::scope(|scope| {
                let comp_answers = &comp_answers;
                let comp_succs = &comp_succs;
                let handles: Vec<_> = work
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|&c| {
                                    let mut add = FxHashSet::default();
                                    let mut firings = 0u64;
                                    for &s in &comp_succs[c] {
                                        firings += comp_answers[s].len() as u64;
                                        add.extend(comp_answers[s].iter().copied());
                                    }
                                    (c, add, firings)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("scc propagation worker panicked"))
                    .collect()
            });
            for (c, add, firings) in additions {
                // Propagation is the dominant cost of the condensation
                // pass (the `t` of the O(tn) bound); one firing per
                // element copied keeps side selection measurable and
                // matches the sequential accounting exactly (the read
                // sets are final either way).
                counters.rule_firings += firings;
                comp_answers[c].extend(add);
            }
        } else {
            for &c in work {
                let succs: Vec<usize> = comp_succs[c].iter().copied().collect();
                for s in succs {
                    let (left, right) = comp_answers.split_at_mut(c);
                    counters.rule_firings += left[s].len() as u64;
                    right[0].extend(left[s].iter().copied());
                }
            }
        }
    }

    let mut pairs = FxHashSet::default();
    for (a, id) in roots {
        for &v in &comp_answers[comp[id]] {
            pairs.insert((a, v));
        }
    }
    AllPairsOutcome {
        pairs,
        counters,
        converged: true,
    }
}

/// Which direction [`all_pairs_min_side`] evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalSide {
    /// Evaluated `e_p` from the domain side.
    Forward,
    /// Evaluated `e_p⁻¹` from the range side (pairs flipped back).
    Reverse,
}

/// `p(X, Y)` for a regular system, evaluated from whichever side of the
/// relation makes the answer-set propagation cheaper.
///
/// The paper's complexity reference point is "by applying Tarjan's
/// strong-components algorithm \[21\] to the graph constructed from an
/// expression E … we may compute the relation denoted by E in time
/// O(tn), where t = min{|domain(E)|, |range(E)|}" \[19\].  The dominant
/// cost of [`all_pairs_scc`] is propagating per-component answer sets,
/// which are subsets of the *range* of `E`; evaluating the inverse
/// expression instead propagates subsets of the *domain*.  This function
/// estimates both sides and runs the one with the smaller propagated
/// side, so the propagation cost is O(tn) with t the minimum.
pub fn all_pairs_min_side<S: TupleSource>(
    system: &EqSystem,
    source: &S,
    p: Pred,
    options: &EvalOptions,
) -> (AllPairsOutcome, EvalSide) {
    let inverted = EqSystem::new(system.lhs.iter().map(|&q| (q, system.rhs[&q].inverse())));
    // The candidate sources of the *inverse* machine are (a superset of)
    // the range of E; the candidate sources of E itself are (a superset
    // of) its domain.
    let domain_size = candidate_sources(system, source, p).len();
    let range_size = candidate_sources(&inverted, source, p).len();
    if domain_size < range_size {
        // Propagate domain-side sets: evaluate the inverse expression.
        let mut out = all_pairs_scc(&inverted, source, p, options);
        out.pairs = out.pairs.iter().map(|&(y, x)| (x, y)).collect();
        (out, EvalSide::Reverse)
    } else {
        (all_pairs_scc(system, source, p, options), EvalSide::Forward)
    }
}

/// `p(a, b)`: evaluate `p(a, Y)` and test `b ∈ Y` (§3 notes the second
/// binding cannot be exploited without the §4 transformation).  The
/// traversal stops as soon as `b` is emitted
/// ([`EvalOptions::stop_on_answer`]), so a positive membership never
/// materializes the rest of `p(a, Y)`.
pub fn query_bb<S: TupleSource>(
    evaluator: &Evaluator<'_, S>,
    p: Pred,
    a: Const,
    b: Const,
    options: &EvalOptions,
) -> (bool, EvalOutcome) {
    let options = EvalOptions {
        stop_on_answer: Some(b),
        ..options.clone()
    };
    let out = evaluator.evaluate(p, a, &options);
    (out.answers.contains(&b), out)
}

/// `p(X, X)`: all pairs, keeping the diagonal.
pub fn query_diagonal<S: TupleSource>(
    evaluator: &Evaluator<'_, S>,
    source: &S,
    p: Pred,
    options: &EvalOptions,
) -> (FxHashSet<Const>, AllPairsOutcome) {
    let out = all_pairs_per_source(evaluator, source, p, options);
    let diag = out
        .pairs
        .iter()
        .filter(|(x, y)| x == y)
        .map(|&(x, _)| x)
        .collect();
    (diag, out)
}

/// The Marchetti-Spaccamela-style iteration bound for cyclic data (§3,
/// Figure 8 discussion): for an equation `p = e0 ∪ e1·p·e2`, `m·n`
/// iterations suffice, where `m` is the number of nodes accessible from
/// the query constant through `e1` and `n` the number of nodes accessible
/// on the `e2` side.  Returns `None` if the equation does not have the
/// linear shape.
pub fn cyclic_iteration_bound(
    system: &EqSystem,
    db: &rq_datalog::Database,
    p: Pred,
    a: Const,
) -> Option<u64> {
    let (e0, e1, e2) = linear_decomposition(p, &system.rhs[&p])?;
    let derived = system.derived();
    if e0.contains_any(&derived) || e1.contains_any(&derived) || e2.contains_any(&derived) {
        return None;
    }
    let mut ev = ImageEval::base_only(db);
    // D1: nodes accessible from a via e1 (the "up" side).
    let d1 = ev.image_of(&Expr::star(e1), a);
    // D2: nodes accessible on the e2 side — everything reachable through
    // e2* from the flat-images of D1.
    let mid = ev.image(&e0, &d1);
    let d2 = ev.image(&Expr::star(e2), &mid);
    Some(
        (d1.len() as u64)
            .saturating_mul(d2.len().max(1) as u64)
            .max(1),
    )
}

/// The iteration bound for the *inverse* query `p(X, b)` on cyclic
/// data.  Traversing the inverse machine from `b` walks `e2⁻¹` per
/// level on the way in and `e1⁻¹` on the way out, so the two side
/// counts swap roles: `m` is the number of nodes accessible from `b`
/// through `e2⁻¹`, `n` the number accessible on the `e1⁻¹` side.
/// Returns `None` if the equation does not have the linear shape.
pub fn inverse_cyclic_iteration_bound(
    system: &EqSystem,
    db: &rq_datalog::Database,
    p: Pred,
    b: Const,
) -> Option<u64> {
    let (e0, e1, e2) = linear_decomposition(p, &system.rhs[&p])?;
    let derived = system.derived();
    if e0.contains_any(&derived) || e1.contains_any(&derived) || e2.contains_any(&derived) {
        return None;
    }
    let mut ev = ImageEval::base_only(db);
    let d1 = ev.image_of(&Expr::star(e2.inverse()), b);
    let mid = ev.image(&e0.inverse(), &d1);
    let d2 = ev.image(&Expr::star(e1.inverse()), &mid);
    Some(
        (d1.len() as u64)
            .saturating_mul(d2.len().max(1) as u64)
            .max(1),
    )
}

/// Convenience: evaluate `p(a, Y)` on a database with the cyclic bound
/// applied automatically when the equation is linear (always terminates;
/// complete whenever either the natural condition or the bound applies).
pub fn evaluate_with_cyclic_guard(
    system: &EqSystem,
    db: &rq_datalog::Database,
    p: Pred,
    a: Const,
    options: &EvalOptions,
) -> EvalOutcome {
    let mut opts = options.clone();
    let mut guard_applied = false;
    if opts.max_iterations.is_none() {
        // +1: iteration i explores recursion depth i-1, and the bound
        // counts recursion depths.
        opts.max_iterations = cyclic_iteration_bound(system, db, p, a).map(|b| b + 1);
        guard_applied = opts.max_iterations.is_some();
    }
    let source = EdbSource::new(db);
    let ev = Evaluator::new(system, &source);
    let mut out = ev.evaluate(p, a, &opts);
    // The m·n bound is sufficient (Marchetti-Spaccamela et al. [14]), so
    // stopping at it is completion, not truncation.
    if guard_applied {
        out.converged = true;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::{parse_program, Database};
    use rq_relalg::{lemma1, Lemma1Options};

    fn setup(src: &str) -> (rq_datalog::Program, Database, EqSystem) {
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        (program, db, sys)
    }

    fn konst(p: &rq_datalog::Program, s: &str) -> Const {
        p.consts.get(&rq_common::ConstValue::Str(s.into())).unwrap()
    }

    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c). e(c,d). e(b,a). e(x,y).";

    #[test]
    fn all_pairs_per_source_matches_naive() {
        let (program, db, sys) = setup(TC);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let got = all_pairs_per_source(&ev, &source, tc, &EvalOptions::default());
        let naive = rq_datalog::naive_eval(&program).unwrap();
        let expected: FxHashSet<(Const, Const)> =
            naive.tuples(tc).into_iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(got.pairs, expected);
        assert!(got.converged);
    }

    #[test]
    fn all_pairs_scc_matches_per_source() {
        let (program, db, sys) = setup(TC);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let per_source = all_pairs_per_source(&ev, &source, tc, &EvalOptions::default());
        let scc = all_pairs_scc(&sys, &source, tc, &EvalOptions::default());
        assert_eq!(scc.pairs, per_source.pairs);
    }

    #[test]
    fn scc_shares_work_on_cycles() {
        // A long cycle: per-source repeats the whole cycle for each of
        // the n sources (O(n²) node insertions); SCC sharing visits each
        // product node once (O(n)).
        let n = 40;
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..n {
            src.push_str(&format!("e(v{}, v{}).\n", i, (i + 1) % n));
        }
        let (program, db, sys) = setup(&src);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let per_source = all_pairs_per_source(&ev, &source, tc, &EvalOptions::default());
        let scc = all_pairs_scc(&sys, &source, tc, &EvalOptions::default());
        assert_eq!(scc.pairs, per_source.pairs);
        assert_eq!(scc.pairs.len(), n * n);
        assert!(
            scc.counters.nodes_inserted * 4 < per_source.counters.nodes_inserted,
            "scc {} !<< per-source {}",
            scc.counters.nodes_inserted,
            per_source.counters.nodes_inserted
        );
    }

    #[test]
    fn bb_query_checks_membership() {
        let (program, db, sys) = setup(TC);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let (yes, _) = query_bb(
            &ev,
            tc,
            konst(&program, "a"),
            konst(&program, "d"),
            &EvalOptions::default(),
        );
        assert!(yes);
        let (no, _) = query_bb(
            &ev,
            tc,
            konst(&program, "a"),
            konst(&program, "y"),
            &EvalOptions::default(),
        );
        assert!(!no);
    }

    #[test]
    fn bb_early_exit_explores_less_than_full_traversal() {
        // A long chain: membership of the first successor must not walk
        // the rest of the chain.
        let n = 60;
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..n {
            src.push_str(&format!("e(v{}, v{}).\n", i, i + 1));
        }
        let (program, db, sys) = setup(&src);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let full = ev.evaluate(tc, konst(&program, "v0"), &EvalOptions::default());
        let (yes, early) = query_bb(
            &ev,
            tc,
            konst(&program, "v0"),
            konst(&program, "v1"),
            &EvalOptions::default(),
        );
        assert!(yes);
        assert!(early.converged, "membership is fully answered");
        assert!(
            early.counters.tuples_retrieved * 4 < full.counters.tuples_retrieved.max(4),
            "early {} !<< full {}",
            early.counters.tuples_retrieved,
            full.counters.tuples_retrieved
        );
        // A negative membership still runs to completion and is exact.
        let (no, out) = query_bb(
            &ev,
            tc,
            konst(&program, "v0"),
            konst(&program, "v0"),
            &EvalOptions::default(),
        );
        assert!(!no);
        assert_eq!(out.answers.len(), n);
    }

    #[test]
    fn diagonal_query_finds_cycle_members() {
        let (program, db, sys) = setup(TC);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let (diag, _) = query_diagonal(&ev, &source, tc, &EvalOptions::default());
        // a→b→a cycle: tc(a,a) and tc(b,b) hold.
        let mut names: Vec<String> = diag.iter().map(|&c| program.consts.display(c)).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn cyclic_bound_and_guarded_evaluation() {
        // Figure 8 with m = 2, n = 3 (coprime): needs m·n recursion
        // depths; the guard must terminate with the full answer.
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a1,a2). up(a2,a1).\n\
                   flat(a1,b1).\n\
                   down(b1,b2). down(b2,b3). down(b3,b1).";
        let (program, db, sys) = setup(src);
        let sg = program.pred_by_name("sg").unwrap();
        let a1 = konst(&program, "a1");
        let bound = cyclic_iteration_bound(&sys, &db, sg, a1).unwrap();
        assert_eq!(bound, 6); // m=2 up nodes, n=3 down nodes.
        let out = evaluate_with_cyclic_guard(&sys, &db, sg, a1, &EvalOptions::default());
        let mut names: Vec<String> = out
            .answers
            .iter()
            .map(|&c| program.consts.display(c))
            .collect();
        names.sort();
        assert_eq!(names, vec!["b1", "b2", "b3"]);
    }

    #[test]
    fn inverse_cyclic_bound_makes_inverse_queries_complete() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a1,a2). up(a2,a1).\n\
                   flat(a1,b1).\n\
                   down(b1,b2). down(b2,b3). down(b3,b1).";
        let (program, db, sys) = setup(src);
        let sg = program.pred_by_name("sg").unwrap();
        let b1 = konst(&program, "b1");
        // Sides swap for the inverse direction: m=3 down nodes from b1,
        // n=2 up nodes.
        let bound = inverse_cyclic_iteration_bound(&sys, &db, sg, b1).unwrap();
        assert_eq!(bound, 6);
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate_inverse(
            sg,
            b1,
            &EvalOptions {
                max_iterations: Some(bound + 1),
                ..EvalOptions::default()
            },
        );
        let mut names: Vec<String> = out
            .answers
            .iter()
            .map(|&c| program.consts.display(c))
            .collect();
        names.sort();
        // Oracle: all X with sg(X, b1).
        let naive = rq_datalog::naive_eval(&program).unwrap();
        let mut expected: Vec<String> = naive
            .tuples(sg)
            .into_iter()
            .filter(|t| t[1] == b1)
            .map(|t| program.consts.display(t[0]))
            .collect();
        expected.sort();
        expected.dedup();
        assert_eq!(names, expected);
    }

    #[test]
    fn cyclic_bound_none_for_regular_equation() {
        let (program, db, sys) = setup(TC);
        let tc = program.pred_by_name("tc").unwrap();
        // tc's equation is e*·e — no derived occurrence, so no linear
        // decomposition around tc.
        assert_eq!(
            cyclic_iteration_bound(&sys, &db, tc, konst(&program, "a")),
            None
        );
        // The guard still terminates (natural condition).
        let out = evaluate_with_cyclic_guard(
            &sys,
            &db,
            tc,
            konst(&program, "a"),
            &EvalOptions::default(),
        );
        assert!(out.converged);
    }

    #[test]
    fn min_side_picks_forward_on_a_funnel() {
        // n sources all feeding a 2-node range: the forward evaluation
        // propagates subsets of the tiny range, so forward should win.
        let n = 30;
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..n {
            src.push_str(&format!("e(u{i}, mid).\n"));
        }
        src.push_str("e(mid, sink).\n");
        let (program, db, sys) = setup(&src);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let per_source = all_pairs_per_source(&ev, &source, tc, &EvalOptions::default());
        let (min_side, side) = all_pairs_min_side(&sys, &source, tc, &EvalOptions::default());
        assert_eq!(side, EvalSide::Forward);
        assert_eq!(min_side.pairs, per_source.pairs);
        assert_eq!(min_side.pairs.len(), 2 * n + 1);
    }

    #[test]
    fn min_side_picks_reverse_on_a_fan_out() {
        // One source fanning out to n sinks: the domain {root, mid} is
        // tiny and the range huge, so evaluating the inverse (which
        // propagates domain-side sets) should win.
        let n = 30;
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        src.push_str("e(root, mid).\n");
        for i in 0..n {
            src.push_str(&format!("e(mid, w{i}).\n"));
        }
        let (program, db, sys) = setup(&src);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let per_source = all_pairs_per_source(&ev, &source, tc, &EvalOptions::default());
        let (min_side, side) = all_pairs_min_side(&sys, &source, tc, &EvalOptions::default());
        assert_eq!(side, EvalSide::Reverse);
        assert_eq!(min_side.pairs, per_source.pairs);
    }

    #[test]
    fn min_side_propagation_tracks_smaller_side() {
        // On the fan-out, the forced forward evaluation propagates
        // range-sized answer sets; the chosen reverse side propagates
        // domain-sized sets.  Measure the difference in charged firings.
        let n = 60;
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        src.push_str("e(root, mid).\n");
        for i in 0..n {
            src.push_str(&format!("e(mid, w{i}).\n"));
        }
        let (program, db, sys) = setup(&src);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let forward = all_pairs_scc(&sys, &source, tc, &EvalOptions::default());
        let (chosen, side) = all_pairs_min_side(&sys, &source, tc, &EvalOptions::default());
        assert_eq!(side, EvalSide::Reverse);
        assert_eq!(chosen.pairs, forward.pairs);
        assert!(
            chosen.counters.rule_firings < forward.counters.rule_firings,
            "reverse {} !< forward {}",
            chosen.counters.rule_firings,
            forward.counters.rule_firings
        );
    }

    #[test]
    fn candidate_sources_cover_domain() {
        let (program, db, sys) = setup(TC);
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let sources = candidate_sources(&sys, &source, tc);
        let names: Vec<String> = sources.iter().map(|&c| program.consts.display(c)).collect();
        // Domain of e: a, b, c, x (first columns).
        assert_eq!(names.len(), 4);
    }
}
