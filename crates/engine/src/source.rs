//! The tuple-retrieval interface between the traversal engine and the
//! extensional database.
//!
//! The paper's algorithm consults base relations in exactly two ways:
//! "for any transition q --r--> q' and any term v such that r(u,v) is
//! true" (successors of `u`), and the symmetric direction for inverted
//! expressions.  Keeping this behind a trait lets the same engine run
//! over raw EDB relations *and* over §4's virtual `base-r`/`in-r`/`out-r`
//! relations, whose tuples are computed on demand by joining the original
//! database — the paper's "tuples will only be retrieved by demand".

use rq_common::{Const, Counters, Pred};
use rq_datalog::{mask_of, CompactStore, Database, Relation};
use std::sync::Arc;

/// Demand-driven access to binary relations.
///
/// `Sync` is a supertrait: the engine's parallel machine-instance
/// expansion shares one source across the scoped worker threads of a
/// traversal phase, and the serving layer shares sources across batch
/// workers.  Sources needing interior mutability (e.g. the §4 virtual
/// relations' probe memo) must use locks, not `Cell`/`RefCell`.
pub trait TupleSource: Sync {
    /// Append to `out` every `v` with `r(u, v)`.
    fn successors(&self, r: Pred, u: Const, out: &mut Vec<Const>, counters: &mut Counters);

    /// Append to `out` every `u` with `r(u, v)`.
    fn predecessors(&self, r: Pred, v: Const, out: &mut Vec<Const>, counters: &mut Counters);

    /// Append every constant in the first column of `r` (deduplicated).
    /// Used to seed all-pairs (`p(X,Y)`) queries.
    fn first_column(&self, r: Pred, out: &mut Vec<Const>);
}

/// A [`TupleSource`] reading binary relations straight from a [`Database`].
///
/// All reads go through *shard views* (`EdbSource::shard`): the
/// database hands out per-predicate `Arc`-shared [`Relation`] shards,
/// so a source over an epoch snapshot reads exactly the shard versions
/// that epoch published — including their warm indexes, which persist
/// across epochs for every untouched shard.  The traversal itself is
/// oblivious to the sharding; behavior matches a monolithic database.
pub struct EdbSource<'a> {
    db: &'a Database,
    /// Per-predicate compact stores pinned at construction (one `Arc`
    /// bump each).  Probes read CSR slices through these without
    /// touching the shard's locks; predicates whose shard has no store
    /// (mutated since the last publish, or never published) fall back
    /// to the trie-index path.
    compact: Vec<Option<Arc<CompactStore>>>,
}

impl<'a> EdbSource<'a> {
    /// Wrap a database.
    pub fn new(db: &'a Database) -> Self {
        let compact = (0..db.num_preds())
            .map(|i| db.relation(Pred::from_index(i)).compact_store())
            .collect();
        Self { db, compact }
    }

    /// The wrapped database.
    pub fn db(&self) -> &Database {
        self.db
    }

    /// The shard view for `r` — the relation version this source's
    /// snapshot pinned.
    #[inline]
    fn shard(&self, r: Pred) -> &Relation {
        self.db.relation(r)
    }

    /// The pinned compact store for `r`, if its shard had one.
    #[inline]
    fn store(&self, r: Pred) -> Option<&CompactStore> {
        self.compact.get(r.index()).and_then(|s| s.as_deref())
    }
}

impl TupleSource for EdbSource<'_> {
    fn successors(&self, r: Pred, u: Const, out: &mut Vec<Const>, counters: &mut Counters) {
        counters.index_probes += 1;
        if let Some(row) = self.store(r).and_then(|s| s.successors(u)) {
            counters.csr_probes += 1;
            counters.tuples_retrieved += row.len() as u64;
            out.extend_from_slice(row);
            return;
        }
        let rel = self.shard(r);
        debug_assert_eq!(rel.arity(), 2, "engine relations are binary");
        counters.trie_probes += 1;
        let mut ords = Vec::new();
        rel.lookup(mask_of([0]), &[u], &mut ords);
        for o in ords {
            counters.tuples_retrieved += 1;
            out.push(rel.tuple(o)[1]);
        }
    }

    fn predecessors(&self, r: Pred, v: Const, out: &mut Vec<Const>, counters: &mut Counters) {
        counters.index_probes += 1;
        if let Some(row) = self.store(r).and_then(|s| s.predecessors(v)) {
            counters.csr_probes += 1;
            counters.tuples_retrieved += row.len() as u64;
            out.extend_from_slice(row);
            return;
        }
        let rel = self.shard(r);
        counters.trie_probes += 1;
        let mut ords = Vec::new();
        rel.lookup(mask_of([1]), &[v], &mut ords);
        for o in ords {
            counters.tuples_retrieved += 1;
            out.push(rel.tuple(o)[0]);
        }
    }

    fn first_column(&self, r: Pred, out: &mut Vec<Const>) {
        if let Some(sources) = self.store(r).and_then(|s| s.first_column()) {
            out.extend_from_slice(sources);
            return;
        }
        let rel = self.shard(r);
        let mut seen = rq_common::FxHashSet::default();
        for t in rel.iter() {
            if seen.insert(t[0]) {
                out.push(t[0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    #[test]
    fn edb_source_directions() {
        let p = parse_program("e(a,b). e(a,c). e(d,b).").unwrap();
        let db = Database::from_program(&p);
        let e = p.pred_by_name("e").unwrap();
        let a = p
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let b = p
            .consts
            .get(&rq_common::ConstValue::Str("b".into()))
            .unwrap();
        let src = EdbSource::new(&db);
        let mut counters = Counters::new();
        let mut out = Vec::new();
        src.successors(e, a, &mut out, &mut counters);
        assert_eq!(out.len(), 2);
        out.clear();
        src.predecessors(e, b, &mut out, &mut counters);
        assert_eq!(out.len(), 2);
        assert_eq!(counters.index_probes, 2);
        assert_eq!(counters.tuples_retrieved, 4);
        out.clear();
        src.first_column(e, &mut out);
        assert_eq!(out.len(), 2); // {a, d}
    }

    #[test]
    fn csr_probes_match_trie_probes_and_counter_totals() {
        let p = parse_program("e(a,b). e(a,c). e(d,b).").unwrap();
        let trie_db = Database::from_program(&p);
        let csr_db = Database::from_program(&p);
        assert!(csr_db.build_compact_stores() > 0);
        let e = p.pred_by_name("e").unwrap();
        let trie = EdbSource::new(&trie_db);
        let csr = EdbSource::new(&csr_db);
        for c in 0..p.consts.len() {
            let x = Const::from_index(c);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            let (mut ca, mut cb) = (Counters::new(), Counters::new());
            trie.successors(e, x, &mut a, &mut ca);
            csr.successors(e, x, &mut b, &mut cb);
            assert_eq!(a, b);
            trie.predecessors(e, x, &mut a, &mut ca);
            csr.predecessors(e, x, &mut b, &mut cb);
            assert_eq!(a, b);
            // Identical probe/tuple charges; only the csr/trie split
            // differs between the two paths.
            assert_eq!(ca.index_probes, cb.index_probes);
            assert_eq!(ca.tuples_retrieved, cb.tuples_retrieved);
            assert_eq!(ca.csr_probes, 0);
            assert_eq!(cb.trie_probes, 0);
            assert_eq!(cb.csr_probes, cb.index_probes);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        trie.first_column(e, &mut a);
        csr.first_column(e, &mut b);
        assert_eq!(a, b, "first-seen order matches the scan path");
    }

    #[test]
    fn sources_over_shared_snapshots_answer_independently() {
        // Two database versions sharing every untouched shard: sources
        // over each must answer from their own pinned shard views.
        let p = parse_program("e(a,b). f(a,c).").unwrap();
        let db = Database::from_program(&p);
        let e = p.pred_by_name("e").unwrap();
        let f = p.pred_by_name("f").unwrap();
        let a = p
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let mut next = db.clone();
        next.insert(e, &[a, a]);
        // `f` is untouched: both versions read the *same* shard.
        assert!(std::sync::Arc::ptr_eq(
            db.shard(f).unwrap(),
            next.shard(f).unwrap()
        ));
        let mut counters = Counters::new();
        let mut out = Vec::new();
        EdbSource::new(&db).successors(e, a, &mut out, &mut counters);
        assert_eq!(out.len(), 1, "old snapshot sees the old shard");
        out.clear();
        EdbSource::new(&next).successors(e, a, &mut out, &mut counters);
        assert_eq!(out.len(), 2, "new snapshot sees the delta");
    }
}
