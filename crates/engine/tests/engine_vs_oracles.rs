//! Property tests: the traversal engine must agree with the bottom-up
//! oracles (naive/seminaive Datalog evaluation) on randomly generated
//! linear binary-chain programs and databases, for every query form.

use proptest::prelude::*;
use rq_common::{Const, FxHashSet};
use rq_datalog::{parse_program, Database, Program};
use rq_engine::{all_pairs_per_source, EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, EqSystem, Lemma1Options};

/// A small generated workload: a right-, left-, or middle-linear chain
/// program over `nb` base relations with random facts over `nc`
/// constants.
#[derive(Debug, Clone)]
struct Workload {
    src: String,
}

fn workload_strategy() -> impl Strategy<Value = Workload> {
    // shape: 0 = right-linear tc, 1 = left-linear tc, 2 = same-generation
    // (middle linear), 3 = two-predicate mutual recursion.
    let shape = 0..4u8;
    let edges = proptest::collection::vec((0..8u8, 0..8u8), 1..25);
    let edges2 = proptest::collection::vec((0..8u8, 0..8u8), 1..25);
    let edges3 = proptest::collection::vec((0..8u8, 0..8u8), 1..25);
    (shape, edges, edges2, edges3).prop_map(|(shape, e1, e2, e3)| {
        let mut src = String::new();
        match shape {
            0 => {
                src.push_str("p(X,Y) :- e(X,Y).\np(X,Z) :- e(X,Y), p(Y,Z).\n");
            }
            1 => {
                src.push_str("p(X,Y) :- e(X,Y).\np(X,Z) :- p(X,Y), e(Y,Z).\n");
            }
            2 => {
                src.push_str("p(X,Y) :- f(X,Y).\np(X,Z) :- e(X,X1), p(X1,Y1), g(Y1,Z).\n");
            }
            _ => {
                src.push_str(
                    "p(X,Z) :- e(X,Y), q(Y,Z).\n\
                     q(X,Y) :- f(X,Y).\n\
                     q(X,Z) :- p(X,Y), g(Y,Z).\n",
                );
            }
        }
        for (a, b) in &e1 {
            src.push_str(&format!("e(c{a},c{b}).\n"));
        }
        for (a, b) in &e2 {
            src.push_str(&format!("f(c{a},c{b}).\n"));
        }
        for (a, b) in &e3 {
            src.push_str(&format!("g(c{a},c{b}).\n"));
        }
        Workload { src }
    })
}

fn oracle_pairs(program: &Program, pred: rq_common::Pred) -> FxHashSet<(Const, Const)> {
    let res = rq_datalog::seminaive_eval(program).unwrap();
    res.tuples(pred).into_iter().map(|t| (t[0], t[1])).collect()
}

fn build(src: &str) -> Option<(Program, Database, EqSystem)> {
    let program = parse_program(src).ok()?;
    let db = Database::from_program(&program);
    let sys = lemma1(&program, &Lemma1Options::default()).ok()?.system;
    Some((program, db, sys))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_bf_matches_seminaive(w in workload_strategy()) {
        let (program, db, sys) = build(&w.src).expect("generated programs are valid");
        let p = program.pred_by_name("p").unwrap();
        let expected = oracle_pairs(&program, p);
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        // All generated data is over constants c0..c7; query each.
        for i in 0..8u8 {
            let Some(a) = program.consts.get(&rq_common::ConstValue::Str(format!("c{i}"))) else {
                continue;
            };
            // The generated up/e relations can be cyclic, making the
            // middle-linear shapes nonterminating; use a generous bound
            // (identical answers require depth ≤ |D1|·|D2| ≤ 64 + 1).
            let out = ev.evaluate(p, a, &EvalOptions { max_iterations: Some(80), ..EvalOptions::default() });
            let got: FxHashSet<Const> = out.answers;
            let want: FxHashSet<Const> = expected
                .iter()
                .filter(|(x, _)| *x == a)
                .map(|&(_, y)| y)
                .collect();
            prop_assert_eq!(&got, &want, "bf query from c{} in\n{}", i, w.src);
        }
    }

    #[test]
    fn engine_fb_matches_seminaive(w in workload_strategy()) {
        let (program, db, sys) = build(&w.src).expect("generated programs are valid");
        let p = program.pred_by_name("p").unwrap();
        let expected = oracle_pairs(&program, p);
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        for i in 0..8u8 {
            let Some(b) = program.consts.get(&rq_common::ConstValue::Str(format!("c{i}"))) else {
                continue;
            };
            let out = ev.evaluate_inverse(p, b, &EvalOptions { max_iterations: Some(80), ..EvalOptions::default() });
            let got: FxHashSet<Const> = out.answers;
            let want: FxHashSet<Const> = expected
                .iter()
                .filter(|(_, y)| *y == b)
                .map(|&(x, _)| x)
                .collect();
            prop_assert_eq!(&got, &want, "fb query to c{} in\n{}", i, w.src);
        }
    }

    #[test]
    fn engine_all_pairs_matches_seminaive(w in workload_strategy()) {
        let (program, db, sys) = build(&w.src).expect("generated programs are valid");
        let p = program.pred_by_name("p").unwrap();
        let expected = oracle_pairs(&program, p);
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = all_pairs_per_source(
            &ev,
            &source,
            p,
            &EvalOptions { max_iterations: Some(80), ..EvalOptions::default() },
        );
        prop_assert_eq!(&out.pairs, &expected, "all-pairs in\n{}", w.src);
    }

    #[test]
    fn scc_all_pairs_matches_on_regular(edges in proptest::collection::vec((0..10u8, 0..10u8), 1..40)) {
        let mut src = String::from("p(X,Y) :- e(X,Y).\np(X,Z) :- e(X,Y), p(Y,Z).\n");
        for (a, b) in &edges {
            src.push_str(&format!("e(c{a},c{b}).\n"));
        }
        let (program, db, sys) = build(&src).expect("valid");
        let p = program.pred_by_name("p").unwrap();
        let expected = oracle_pairs(&program, p);
        let source = EdbSource::new(&db);
        let got = rq_engine::all_pairs_scc(&sys, &source, p, &EvalOptions::default());
        prop_assert_eq!(&got.pairs, &expected);
    }

    #[test]
    fn cyclic_guard_is_complete(m in 1..5usize, n in 1..5usize) {
        // Figure 8 generalized: up cycle of length m, down cycle of
        // length n, flat at the cycle anchor.
        let mut src = String::from(
            "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n",
        );
        for i in 0..m {
            src.push_str(&format!("up(a{}, a{}).\n", i, (i + 1) % m));
        }
        src.push_str("flat(a0, b0).\n");
        for i in 0..n {
            src.push_str(&format!("down(b{}, b{}).\n", i, (i + 1) % n));
        }
        let (program, db, sys) = build(&src).expect("valid");
        let sg = program.pred_by_name("sg").unwrap();
        let a0 = program.consts.get(&rq_common::ConstValue::Str("a0".into())).unwrap();
        let expected: FxHashSet<Const> = oracle_pairs(&program, sg)
            .into_iter()
            .filter(|(x, _)| *x == a0)
            .map(|(_, y)| y)
            .collect();
        let out = rq_engine::evaluate_with_cyclic_guard(&sys, &db, sg, a0, &EvalOptions::default());
        prop_assert_eq!(&out.answers, &expected, "m={} n={}", m, n);
    }
}
