//! Properties of the parallel machine-instance expansion and the
//! epoch-scoped [`EvalContext`]:
//!
//! * the parallel traversal phase produces **byte-identical** answer
//!   sets to the single-threaded path, on random programs, on cyclic
//!   data, and under iteration bounds (the per-iteration traversal is
//!   exhaustive in both modes, so nothing about the answer set may
//!   depend on thread scheduling);
//! * a shared [`EvalContext`] never changes any answer — it only
//!   removes work — and only complete, converged runs are ever
//!   recorded into it.

use proptest::prelude::*;
use rq_common::Const;
use rq_engine::{EdbSource, EvalContext, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};
use rq_workloads::randprog::{seeded, RecursionStyle};

fn sorted(answers: &rq_common::FxHashSet<Const>) -> Vec<Const> {
    let mut v: Vec<Const> = answers.iter().copied().collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random binary-chain programs: every derived predicate evaluated
    /// from every constant agrees between 1 and 4 expansion threads,
    /// in both orientations.
    #[test]
    fn parallel_expansion_matches_sequential(seed in 0u64..400, style_pick in 0u8..2) {
        let style = if style_pick == 0 { RecursionStyle::Mixed } else { RecursionStyle::Regular };
        let rp = seeded(seed, style);
        let db = rq_datalog::Database::from_program(&rp.program);
        let sys = lemma1(&rp.program, &Lemma1Options::default()).unwrap().system;
        let source = EdbSource::new(&db);
        let evaluator = Evaluator::new(&sys, &source);
        let sequential = EvalOptions { max_iterations: Some(64), ..EvalOptions::default() };
        let parallel = EvalOptions { expand_threads: 4, ..sequential.clone() };
        for &p in &sys.lhs {
            for c in 0..rp.program.consts.len() {
                let a = Const::from_index(c);
                let seq = evaluator.evaluate(p, a, &sequential);
                let par = evaluator.evaluate(p, a, &parallel);
                prop_assert_eq!(sorted(&seq.answers), sorted(&par.answers));
                prop_assert_eq!(seq.converged, par.converged);
                prop_assert_eq!(seq.graph_nodes, par.graph_nodes);
                let seq_inv = evaluator.evaluate_inverse(p, a, &sequential);
                let par_inv = evaluator.evaluate_inverse(p, a, &parallel);
                prop_assert_eq!(sorted(&seq_inv.answers), sorted(&par_inv.answers));
            }
        }
    }
}

/// Skewed graphs are the work-stealing scheduler's reason to exist: a
/// round-robin seed deal strands all the work on whichever worker drew
/// the heavy region.  Each shape below concentrates almost all
/// reachable nodes behind one seed; answers, convergence, and graph
/// sizes must still match the sequential path exactly, with and
/// without publish-time compact stores.
#[test]
fn work_stealing_matches_sequential_on_skewed_graphs() {
    let star = {
        // Hub with many leaves: one seed owns every expansion.
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..120 {
            src.push_str(&format!("e(hub, s{i}).\n"));
        }
        src.push_str("e(lone, hub).\n");
        src
    };
    let lollipop = {
        // Dense clique feeding a long tail: the clique floods one
        // worker's deque while the tail trickles.
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..12 {
            for j in 0..12 {
                if i != j {
                    src.push_str(&format!("e(c{i}, c{j}).\n"));
                }
            }
        }
        for i in 0..40 {
            src.push_str(&format!("e(t{}, t{}).\n", i, i + 1));
        }
        src.push_str("e(c0, t0).\n");
        src
    };
    let heavy_hub = {
        // Two-level fan-out behind a single entry edge.
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        src.push_str("e(root, hub).\n");
        for i in 0..20 {
            src.push_str(&format!("e(hub, m{i}).\n"));
            for j in 0..8 {
                src.push_str(&format!("e(m{i}, l{i}_{j}).\n"));
            }
        }
        src
    };
    for src in [star, lollipop, heavy_hub] {
        let program = rq_datalog::parse_program(&src).unwrap();
        let db = rq_datalog::Database::from_program(&program);
        let compacted = {
            let db = db.clone();
            assert!(db.build_compact_stores() > 0);
            db
        };
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let sequential = EvalOptions {
            max_iterations: Some(256),
            ..EvalOptions::default()
        };
        let parallel = EvalOptions {
            expand_threads: 4,
            ..sequential.clone()
        };
        let trie_source = EdbSource::new(&db);
        let csr_source = EdbSource::new(&compacted);
        let trie_eval = Evaluator::new(&sys, &trie_source);
        let csr_eval = Evaluator::new(&sys, &csr_source);
        for c in 0..program.consts.len() {
            let a = Const::from_index(c);
            let seq = trie_eval.evaluate(tc, a, &sequential);
            let par = trie_eval.evaluate(tc, a, &parallel);
            let par_csr = csr_eval.evaluate(tc, a, &parallel);
            assert_eq!(sorted(&seq.answers), sorted(&par.answers));
            assert_eq!(sorted(&seq.answers), sorted(&par_csr.answers));
            assert_eq!(seq.converged, par.converged);
            assert_eq!(seq.graph_nodes, par.graph_nodes);
            assert_eq!(seq.graph_nodes, par_csr.graph_nodes);
        }
    }
}

#[test]
fn parallel_expansion_matches_sequential_on_cyclic_bounded_data() {
    // Figure 8's worst case: cyclic data under the m·n iteration
    // bound.  The bound truncates both modes at the same global
    // iteration, so even bounded runs must agree exactly.
    let workload = rq_workloads::fig8::cyclic(5, 7);
    let db = rq_datalog::Database::from_program(&workload.program);
    let sys = lemma1(&workload.program, &Lemma1Options::default())
        .unwrap()
        .system;
    let sg = workload.program.pred_by_name("sg").unwrap();
    let source = EdbSource::new(&db);
    let evaluator = Evaluator::new(&sys, &source);
    for bound in [1, 3, 5 * 7 + 1] {
        for c in 0..workload.program.consts.len() {
            let a = Const::from_index(c);
            let sequential = evaluator.evaluate(
                sg,
                a,
                &EvalOptions {
                    max_iterations: Some(bound),
                    ..EvalOptions::default()
                },
            );
            let parallel = evaluator.evaluate(
                sg,
                a,
                &EvalOptions {
                    max_iterations: Some(bound),
                    expand_threads: 8,
                    ..EvalOptions::default()
                },
            );
            assert_eq!(sorted(&sequential.answers), sorted(&parallel.answers));
            assert_eq!(sequential.converged, parallel.converged);
        }
    }
}

#[test]
fn context_reuses_whole_traversals_and_sub_traversals() {
    // up-chain of depth 3 over a same-generation program: sg(a0, Y)
    // expands child copies from a1 and deeper.  Priming the context
    // with sg(a1, Y) must let sg(a0, Y) skip that whole sub-traversal.
    let src = "sg(X,Y) :- flat(X,Y).\n\
               sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
               up(a0,a1). up(a1,a2). up(a2,a3).\n\
               flat(a0,c0). flat(a1,c1). flat(a2,c2). flat(a3,c3).\n\
               down(c1,d1). down(c2,e2). down(e2,d2). down(c3,f3). down(f3,f4). down(f4,d3).";
    let program = rq_datalog::parse_program(src).unwrap();
    let db = rq_datalog::Database::from_program(&program);
    let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    let sg = program.pred_by_name("sg").unwrap();
    let konst = |s: &str| {
        program
            .consts
            .get(&rq_common::ConstValue::Str(s.into()))
            .unwrap()
    };
    let source = EdbSource::new(&db);

    let cold = Evaluator::new(&sys, &source);
    let cold_a0 = cold.evaluate(sg, konst("a0"), &EvalOptions::default());
    assert!(cold_a0.converged);

    let ctx = EvalContext::new();
    let warm = Evaluator::new(&sys, &source).with_context(&ctx);
    // Prime with the sub-query.
    let a1_first = warm.evaluate(sg, konst("a1"), &EvalOptions::default());
    assert!(a1_first.converged);
    assert_eq!(ctx.entries(), 1);
    // Root-level reuse: the repeat costs nothing.
    let a1_again = warm.evaluate(sg, konst("a1"), &EvalOptions::default());
    assert_eq!(sorted(&a1_again.answers), sorted(&a1_first.answers));
    assert_eq!(a1_again.graph_nodes, 0, "root memo hit builds no graph");
    // Sub-traversal reuse: sg(a0, Y) teleports through the memoized
    // sg(a1, ·) answers instead of splicing that child's sub-machine.
    let warm_a0 = warm.evaluate(sg, konst("a0"), &EvalOptions::default());
    assert_eq!(sorted(&warm_a0.answers), sorted(&cold_a0.answers));
    assert!(
        warm_a0.graph_nodes < cold_a0.graph_nodes,
        "warm {} !< cold {}",
        warm_a0.graph_nodes,
        cold_a0.graph_nodes
    );
    assert!(ctx.stats().hits >= 2);
}

#[test]
fn context_never_records_truncated_or_early_stopped_runs() {
    let src = "sg(X,Y) :- flat(X,Y).\n\
               sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
               up(a1,a2). up(a2,a1). flat(a1,b1).\n\
               down(b1,b2). down(b2,b3). down(b3,b1).";
    let program = rq_datalog::parse_program(src).unwrap();
    let db = rq_datalog::Database::from_program(&program);
    let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    let sg = program.pred_by_name("sg").unwrap();
    let a1 = program
        .consts
        .get(&rq_common::ConstValue::Str("a1".into()))
        .unwrap();
    let b1 = program
        .consts
        .get(&rq_common::ConstValue::Str("b1".into()))
        .unwrap();
    let source = EdbSource::new(&db);
    let ctx = EvalContext::new();
    let evaluator = Evaluator::new(&sys, &source).with_context(&ctx);
    // Iteration-bounded on cyclic data: truncated, must not record.
    let bounded = evaluator.evaluate(
        sg,
        a1,
        &EvalOptions {
            max_iterations: Some(2),
            ..EvalOptions::default()
        },
    );
    assert!(!bounded.converged);
    assert_eq!(ctx.entries(), 0, "truncated runs must not be memoized");
    // Early-stopped membership: partial by design, must not record.
    let stopped = evaluator.evaluate(
        sg,
        a1,
        &EvalOptions {
            max_iterations: Some(100),
            stop_on_answer: Some(b1),
            ..EvalOptions::default()
        },
    );
    assert!(stopped.converged);
    assert_eq!(ctx.entries(), 0, "early-stopped runs must not be memoized");
}

#[test]
fn context_entry_cap_bounds_recording_without_changing_answers() {
    let src = "tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b). e(b,c). e(c,d).";
    let program = rq_datalog::parse_program(src).unwrap();
    let db = rq_datalog::Database::from_program(&program);
    let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    let tc = program.pred_by_name("tc").unwrap();
    let ctx = EvalContext::with_capacity(1);
    let source = EdbSource::new(&db);
    let evaluator = Evaluator::new(&sys, &source).with_context(&ctx);
    let uncapped = Evaluator::new(&sys, &source);
    for name in ["a", "b", "c"] {
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str(name.into()))
            .unwrap();
        let capped_out = evaluator.evaluate(tc, a, &EvalOptions::default());
        let plain_out = uncapped.evaluate(tc, a, &EvalOptions::default());
        assert_eq!(sorted(&capped_out.answers), sorted(&plain_out.answers));
    }
    assert_eq!(ctx.entries(), 1, "the cap refuses keys beyond the first");
}

#[test]
fn parallel_membership_stop_still_answers_correctly() {
    // stop_on_answer under parallel expansion: the answer set may be
    // partial, but the membership verdict must be right.
    let n = 200;
    let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
    for i in 0..n {
        src.push_str(&format!("e(v{}, v{}).\n", i, i + 1));
    }
    let program = rq_datalog::parse_program(&src).unwrap();
    let db = rq_datalog::Database::from_program(&program);
    let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    let tc = program.pred_by_name("tc").unwrap();
    let konst = |s: &str| {
        program
            .consts
            .get(&rq_common::ConstValue::Str(s.into()))
            .unwrap()
    };
    let source = EdbSource::new(&db);
    let evaluator = Evaluator::new(&sys, &source);
    let out = evaluator.evaluate(
        tc,
        konst("v0"),
        &EvalOptions {
            expand_threads: 4,
            stop_on_answer: Some(konst("v5")),
            ..EvalOptions::default()
        },
    );
    assert!(out.converged);
    assert!(out.answers.contains(&konst("v5")));
}
