//! Wire-level recovery parity: a service that crashed mid-append and
//! recovered must answer **byte-identically** through the full HTTP
//! API surface — same `/query`, `/batch` and `/healthz` payload bytes
//! as a never-crashed twin at the same epoch.  This is the end-to-end
//! face of the interner-order invariant: replaying the write-ahead log
//! re-interns every constant at the same id, so even the row *order*
//! inside a JSON answer (sorted by id) cannot drift.

use rq_service::{QueryService, ServiceConfig, ServiceError};
use rq_store::{MemBackend, StorageBackend};
use std::sync::Arc;

const RULES: &str = "tc(X,Y) :- e(X,Y).\n\
                     tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                     e(n0,n1).";

fn program() -> rq_datalog::Program {
    rq_datalog::parse_program(RULES).unwrap()
}

fn config() -> ServiceConfig {
    ServiceConfig {
        threads: 2,
        ..ServiceConfig::default()
    }
}

/// The exact response bytes the HTTP layer would put on the wire.
fn payload(service: &QueryService, method: &str, path: &str, body: &str) -> (u16, String) {
    let resp = rq_wire::handle(service, method, path, body.as_bytes());
    (resp.status, resp.payload())
}

const BATCHES: &[&str] = &[
    "e(n1, n2). e(n2, n3).",
    "r1(n3, n9). e(n3, n0).",
    "e(n2, n7). r1(n9, n4). e(n7, n8).",
];

#[test]
fn recovered_service_answers_byte_identically_through_the_wire() {
    // Never-crashed twin.
    let twin = QueryService::with_config(program(), config());
    for batch in BATCHES {
        twin.ingest(batch).unwrap();
    }

    // Learn the clean log length, then crash in the middle of the
    // final append and recover.
    let clean = Arc::new(MemBackend::new());
    {
        let svc = QueryService::open_backend(
            program(),
            clean.clone() as Arc<dyn StorageBackend>,
            config(),
        )
        .unwrap();
        for batch in BATCHES {
            svc.ingest(batch).unwrap();
        }
    }
    let total = clean.log_len();
    let backend = Arc::new(MemBackend::with_fault(total as u64 - 3));
    let crashed = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn StorageBackend>,
        config(),
    )
    .unwrap();
    let mut acked = 0usize;
    for batch in BATCHES {
        match crashed.ingest(batch) {
            Ok(_) => acked += 1,
            Err(e) => {
                assert!(matches!(e, ServiceError::Ingest(_)), "{e}");
                break;
            }
        }
    }
    assert_eq!(acked, BATCHES.len() - 1, "the fault tears the last append");
    drop(crashed);
    backend.clear_fault();
    let recovered = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn StorageBackend>,
        config(),
    )
    .unwrap();
    assert_eq!(recovered.snapshot().epoch(), acked as u64);

    // The twin at the same epoch: replay the acknowledged prefix.
    let prefix_twin = QueryService::with_config(program(), config());
    for batch in &BATCHES[..acked] {
        prefix_twin.ingest(batch).unwrap();
    }

    // Byte-for-byte identical responses across the API surface.
    let requests: &[(&str, &str, &str)] = &[
        ("POST", "/query", r#"{"query": "tc(n0, Y)"}"#),
        ("POST", "/query", r#"{"query": "tc(X, Y)"}"#),
        ("POST", "/query", r#"{"query": "tc(n1, n3)"}"#),
        (
            "POST",
            "/batch",
            r#"{"queries": ["tc(n0, Y)", "tc(X, X)", "r1(n3, Y)", "zzz(a)"]}"#,
        ),
    ];
    for &(method, path, body) in requests {
        let (status_a, bytes_a) = payload(&recovered, method, path, body);
        let (status_b, bytes_b) = payload(&prefix_twin, method, path, body);
        assert_eq!(status_a, status_b, "{method} {path}");
        assert_eq!(bytes_a, bytes_b, "{method} {path} {body}");
    }
}

#[test]
fn ingest_ack_reports_durability_and_stats_report_recovery() {
    // In-memory: the ack says so.
    let memory = QueryService::with_config(program(), config());
    let (status, bytes) = payload(&memory, "POST", "/ingest", r#"{"facts": "e(n1, n2)."}"#);
    assert_eq!(status, 200);
    assert!(bytes.contains("\"durable\":false"), "{bytes}");
    let (_, stats) = payload(&memory, "GET", "/stats", "");
    assert!(stats.contains("\"durability\":null"), "{stats}");

    // Durable: the ack flips, and /stats + /metrics carry the
    // recovery counters.
    let backend = Arc::new(MemBackend::new());
    let durable = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn StorageBackend>,
        config(),
    )
    .unwrap();
    let (status, bytes) = payload(&durable, "POST", "/ingest", r#"{"facts": "e(n1, n2)."}"#);
    assert_eq!(status, 200);
    assert!(bytes.contains("\"durable\":true"), "{bytes}");
    drop(durable);

    let reopened = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn StorageBackend>,
        config(),
    )
    .unwrap();
    let (_, stats) = payload(&reopened, "GET", "/stats", "");
    assert!(stats.contains("\"durability\":{"), "{stats}");
    assert!(stats.contains("\"replayed_records\":1"), "{stats}");
    let (_, metrics) = payload(&reopened, "GET", "/metrics", "");
    assert!(metrics.contains("rq_recovery_epoch 1\n"), "{metrics}");
    assert!(
        metrics.contains("rq_recovery_replayed_records 1\n"),
        "{metrics}"
    );
    assert!(metrics.contains("rq_wal_records_total"), "{metrics}");
}
