//! Wire-protocol tests over real sockets: a spawned [`WireServer`] on
//! an OS-assigned port, raw `TcpStream` clients, and a hand-rolled
//! response reader (so the tests exercise exactly the bytes a real
//! HTTP client would see).

use rq_common::Json;
use rq_service::{QueryService, ServiceConfig};
use rq_wire::{ServerHandle, WireConfig, WireServer};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                  tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                  rc(X,Y) :- f(X,Y).\n\
                  rc(X,Z) :- f(X,Y), rc(Y,Z).\n\
                  e(a,b). e(b,c). f(m,n). f(n,o).";

fn start(source: &str, config: WireConfig) -> (Arc<QueryService>, ServerHandle) {
    let service = Arc::new(QueryService::from_source(source).unwrap());
    let server = WireServer::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    (service, server.spawn().unwrap())
}

/// One parsed client-side response.
struct ClientResponse {
    status: u16,
    connection: String,
    body: Json,
}

/// Read one HTTP response off a buffered stream (status line, headers,
/// content-length-framed body).
fn read_response(reader: &mut BufReader<TcpStream>) -> ClientResponse {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').unwrap();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => content_length = value.trim().parse().unwrap(),
            "connection" => connection = value.trim().to_string(),
            _ => {}
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    ClientResponse {
        status,
        connection,
        body: Json::parse(std::str::from_utf8(&body).unwrap()).unwrap(),
    }
}

fn request_bytes(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One-shot helper: fresh connection, one request, one response.
fn roundtrip(handle: &ServerHandle, method: &str, path: &str, body: &str) -> ClientResponse {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer
        .write_all(request_bytes(method, path, body).as_bytes())
        .unwrap();
    read_response(&mut reader)
}

#[test]
fn healthz_and_stats_respond() {
    let (_service, handle) = start(TC, WireConfig::default());
    let health = roundtrip(&handle, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body.get("status").and_then(Json::as_str), Some("ok"));
    let stats = roundtrip(&handle, "GET", "/stats", "");
    assert_eq!(stats.status, 200);
    assert!(stats.body.get("plan_cache").is_some());
    handle.shutdown();
}

#[test]
fn batch_rows_are_byte_identical_to_the_service() {
    // The acceptance parity check at the wire level: the JSON rows of
    // POST /batch, re-encoded, must equal the rows of the same specs
    // asked directly of the shared QueryService, encoded the same way.
    let (service, handle) = start(TC, WireConfig::default());
    let texts = ["tc(a, Y)", "tc(X, c)", "tc(X, Y)", "tc(a, c)", "rc(m, Y)"];
    let queries: Vec<Json> = texts.iter().map(|t| Json::Str(t.to_string())).collect();
    let body = Json::object([("queries", Json::Array(queries))]).encode();
    let response = roundtrip(&handle, "POST", "/batch", &body);
    assert_eq!(response.status, 200);

    let specs: Vec<_> = texts
        .iter()
        .map(|t| service.parse_query(t).unwrap())
        .collect();
    let direct = service.query_batch(&specs);
    let snapshot = service.snapshot();
    let answers = response
        .body
        .get("answers")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(answers.len(), texts.len());
    for (wire_answer, direct_answer) in answers.iter().zip(&direct) {
        let direct_answer = direct_answer.as_ref().unwrap();
        let expected_rows = Json::Array(
            direct_answer
                .rows
                .iter()
                .map(|row| {
                    Json::Array(
                        row.iter()
                            .map(|&c| Json::Str(snapshot.program().consts.display(c)))
                            .collect(),
                    )
                })
                .collect(),
        );
        let wire_rows = wire_answer.get("rows").unwrap();
        assert_eq!(
            wire_rows.encode(),
            expected_rows.encode(),
            "byte-identical rows for {:?}",
            wire_answer.get("query")
        );
    }
    handle.shutdown();
}

#[test]
fn keep_alive_pipelined_requests_answer_in_order() {
    let (_service, handle) = start(TC, WireConfig::default());
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    // Three pipelined requests in one write: two queries and a stats
    // probe.  Responses must come back in order on the same socket.
    let mut bytes = String::new();
    bytes.push_str(&request_bytes("POST", "/query", r#"{"query": "tc(a, Y)"}"#));
    bytes.push_str(&request_bytes("POST", "/query", r#"{"query": "tc(a, c)"}"#));
    bytes.push_str(&request_bytes("GET", "/healthz", ""));
    writer.write_all(bytes.as_bytes()).unwrap();

    let first = read_response(&mut reader);
    assert_eq!(first.status, 200);
    assert_eq!(first.connection, "keep-alive");
    assert_eq!(
        first
            .body
            .get("rows")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        2
    );
    let second = read_response(&mut reader);
    assert_eq!(second.body.get("holds").and_then(Json::as_bool), Some(true));
    let third = read_response(&mut reader);
    assert_eq!(third.body.get("status").and_then(Json::as_str), Some("ok"));
    handle.shutdown();
}

#[test]
fn oversized_bodies_are_413_and_close() {
    let config = WireConfig {
        limits: rq_wire::Limits {
            max_body_bytes: 256,
            ..rq_wire::Limits::default()
        },
        ..WireConfig::default()
    };
    let (_service, handle) = start(TC, config);
    let big = format!(r#"{{"query": "tc(a, {})"}}"#, "Y".repeat(400));
    let response = roundtrip(&handle, "POST", "/query", &big);
    assert_eq!(response.status, 413);
    assert_eq!(response.connection, "close");
    assert!(response
        .body
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("too large"));
    // The server survives and keeps serving new connections.
    let health = roundtrip(&handle, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    handle.shutdown();
}

#[test]
fn malformed_json_and_unknown_predicates_are_clean_errors() {
    let (_service, handle) = start(TC, WireConfig::default());
    let bad_json = roundtrip(&handle, "POST", "/query", r#"{"query": "tc(a"#);
    assert_eq!(bad_json.status, 400);
    assert!(bad_json
        .body
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("JSON"));
    let unknown = roundtrip(&handle, "POST", "/query", r#"{"query": "zzz(a, Y)"}"#);
    assert_eq!(unknown.status, 400);
    assert!(unknown
        .body
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("unknown predicate"));
    // In a batch the same failure is inline, not fatal.
    let batch = roundtrip(
        &handle,
        "POST",
        "/batch",
        r#"{"queries": ["zzz(a, Y)", "tc(a, Y)"]}"#,
    );
    assert_eq!(batch.status, 200);
    let answers = batch.body.get("answers").and_then(Json::as_array).unwrap();
    assert!(answers[0].get("error").is_some());
    assert_eq!(
        answers[1]
            .get("rows")
            .and_then(Json::as_array)
            .unwrap()
            .len(),
        2
    );
    handle.shutdown();
}

#[test]
fn raw_garbage_gets_400_not_a_hang() {
    let (_service, handle) = start(TC, WireConfig::default());
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
    let response = read_response(&mut reader);
    assert_eq!(response.status, 400);
    handle.shutdown();
}

#[test]
fn concurrent_ingest_while_querying_over_sockets() {
    // Writers publish epochs over /ingest while readers hammer /query
    // and /batch on their own connections.  Every response must be
    // well-formed, every answer sound for *some* served epoch: the
    // rows are always a superset of epoch 0's answer and a subset of
    // the final epoch's.
    let service_config = ServiceConfig {
        threads: 2,
        eval_threads: 1,
        ..ServiceConfig::default()
    };
    let service = Arc::new(QueryService::with_config(
        rq_datalog::parse_program(TC).unwrap(),
        service_config,
    ));
    let server = WireServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        WireConfig {
            workers: 4,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr();

    const INGESTS: usize = 8;
    let writer = std::thread::spawn(move || {
        for i in 0..INGESTS {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = stream.try_clone().unwrap();
            let mut r = BufReader::new(stream);
            let facts = format!("e(c, x{i}).");
            let body = format!(r#"{{"facts": "{facts}"}}"#);
            w.write_all(request_bytes("POST", "/ingest", &body).as_bytes())
                .unwrap();
            let response = read_response(&mut r);
            assert_eq!(response.status, 200);
        }
    });

    let mut readers = Vec::new();
    for _ in 0..3 {
        readers.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = stream.try_clone().unwrap();
            let mut r = BufReader::new(stream);
            for _ in 0..20 {
                w.write_all(request_bytes("POST", "/query", r#"{"query": "tc(a, Y)"}"#).as_bytes())
                    .unwrap();
                let response = read_response(&mut r);
                assert_eq!(response.status, 200);
                let rows = response.body.get("rows").and_then(Json::as_array).unwrap();
                // Epoch 0 answers {b, c}; every ingest only adds.
                assert!(rows.len() >= 2, "rows shrank: {:?}", response.body);
                assert!(rows.len() <= 2 + INGESTS);
                let epoch = response.body.get("epoch").and_then(Json::as_i64).unwrap();
                assert!((0..=INGESTS as i64).contains(&epoch));
            }
        }));
    }
    writer.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }
    // Quiesced: the final epoch serves every added edge.
    let final_answer = roundtrip(&handle, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    let rows = final_answer
        .body
        .get("rows")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(rows.len(), 2 + INGESTS);
    assert_eq!(
        final_answer.body.get("epoch").and_then(Json::as_i64),
        Some(INGESTS as i64)
    );
    // The clean-read-set rc plan kept its carried context through all
    // those disjoint publishes.
    let stats = roundtrip(&handle, "GET", "/stats", "");
    let epoch = stats.body.get("epoch").and_then(Json::as_i64).unwrap();
    assert_eq!(epoch, INGESTS as i64);
    handle.shutdown();
}

#[test]
fn last_allowed_request_on_a_connection_advertises_close() {
    // With a 2-request connection cap, the second response must say
    // `connection: close` (not invite more traffic and then reset),
    // and the server must close its end afterwards.
    let config = WireConfig {
        max_requests_per_connection: 2,
        ..WireConfig::default()
    };
    let (_service, handle) = start(TC, config);
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer
        .write_all(request_bytes("GET", "/healthz", "").as_bytes())
        .unwrap();
    let first = read_response(&mut reader);
    assert_eq!(first.connection, "keep-alive");
    writer
        .write_all(request_bytes("GET", "/healthz", "").as_bytes())
        .unwrap();
    let second = read_response(&mut reader);
    assert_eq!(second.status, 200);
    assert_eq!(second.connection, "close", "cap reached: must say close");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server closed after the advertised close");
    handle.shutdown();
}

#[test]
fn connection_close_is_honored() {
    let (_service, handle) = start(TC, WireConfig::default());
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let response = read_response(&mut reader);
    assert_eq!(response.status, 200);
    assert_eq!(response.connection, "close");
    // The server closed its end: the next read sees EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    handle.shutdown();
}
