//! `rq-wire` — a dependency-free HTTP/1.1 wire protocol in front of
//! the [`rq_service::QueryService`] serving layer.
//!
//! The build environment has no registry access, so — mirroring the
//! `shims/` approach — the whole stack is hand-rolled on `std`:
//! [`std::net::TcpListener`] accept loop ([`server`]), request parsing
//! with `Content-Length` framing, keep-alive, and hard size limits
//! ([`http`]), and JSON bodies through the workspace's shared
//! [`rq_common::json`] codec ([`api`]).  Endpoint semantics mirror the
//! `rqc serve` REPL exactly: the same query text means the same thing
//! on either front end, and both render their counters from the same
//! [`rq_service::StatsReport`].
//!
//! # Endpoints
//!
//! ## `POST /query` — answer one query
//!
//! Request and response bodies, verbatim:
//!
//! ```text
//! POST /query
//! {"query": "tc(a, Y)"}
//!
//! 200 OK
//! {"query":"tc(a, Y)","epoch":0,"rows":[["b"],["c"]],"converged":true,"from_cache":false}
//! ```
//!
//! Every query form of the serving REPL is accepted: point queries
//! `tc(a, Y)`, inverse `tc(X, a)`, all-pairs `tc(X, Y)`, diagonals
//! `tc(X, X)`, and n-ary §4 forms like `cnx(hel, 540, D, AT)` (integer
//! constants come back as JSON numbers).  Fully bound membership
//! queries add an explicit verdict:
//!
//! ```text
//! POST /query
//! {"query": "tc(a, c)"}
//!
//! 200 OK
//! {"query":"tc(a, c)","epoch":0,"holds":true,"rows":[[]],"converged":true,"from_cache":false}
//! ```
//!
//! Unparseable queries are `400 {"error": "…"}`; a query naming a
//! constant the program has never seen is not an error but the
//! semantically empty answer (`rows: []`, and `holds: false` when
//! fully bound) — the same contract as the REPL.
//!
//! Adding `"trace": true` to the body returns the evaluation's span
//! tree alongside the answer — each node is
//! `{"name", "start_ns", "dur_ns", "notes", "children"}`, rooted at
//! the `service.query` span:
//!
//! ```text
//! POST /query
//! {"query": "tc(a, Y)", "trace": true}
//!
//! 200 OK
//! {"query":"tc(a, Y)", …, "trace":{"name":"service.query","dur_ns":83250,
//!   "notes":{"result_cache":"miss","rows":"2","converged":"true"},
//!   "children":[{"name":"service.plan",…},{"name":"engine.traverse",…}]}}
//! ```
//!
//! ## `POST /batch` — many queries, one snapshot
//!
//! ```text
//! POST /batch
//! {"queries": ["tc(a, Y)", "tc(a, c)", "zzz(a, Y)"]}
//!
//! 200 OK
//! {"epoch":0,"answers":[
//!   {"query":"tc(a, Y)","epoch":0,"rows":[["b"],["c"]],"converged":true,"from_cache":false},
//!   {"query":"tc(a, c)","epoch":0,"holds":true,"rows":[[]],"converged":true,"from_cache":true},
//!   {"query":"zzz(a, Y)","error":"unknown predicate `zzz`"}]}
//! ```
//!
//! The whole batch is answered on **one** snapshot epoch through
//! [`rq_service::QueryService::query_batch`] — identical specs are
//! evaluated once, the rest fan out across the service's worker
//! threads — and per-query errors are reported inline so one bad query
//! cannot fail its neighbors.
//!
//! ## `POST /ingest` — publish the next epoch
//!
//! ```text
//! POST /ingest
//! {"facts": "e(c,d). e(d,f)."}
//!
//! 200 OK
//! {"epoch":1,"tuples":4,"durable":false,"dirty":["e"]}
//! ```
//!
//! Fact clauses only; the batch is validated **before** any
//! copy-on-write clone, so a rejected ingest (`400`) costs nothing and
//! publishes nothing.  `dirty` lists the predicates whose storage
//! shard the publish replaced — the unit of cache invalidation.
//! `durable` is `true` when the service runs with a data directory
//! (`rqc serve --data-dir`): the epoch's write-ahead-log record was
//! persisted *before* the acknowledgement, so the published epoch
//! survives a crash.
//!
//! ## `GET /stats` — the shared counter report
//!
//! Serializes [`rq_service::StatsReport`] (the same struct the REPL's
//! `:stats` prints as text): plan-cache hits/misses and compiled-plan
//! counts, result-cache hits/misses/evictions/dedup with entry and
//! byte footprints, and the epoch context's probe/machine-memo
//! counters including what the last publish carried forward.
//!
//! ```text
//! GET /stats
//!
//! 200 OK
//! {"epoch":1,
//!  "plan_cache":{"hits":3,"misses":1,"chain_programs":1,"nary_plans":0},
//!  "result_cache":{"hits":2,"misses":2,"evictions":0,"deduped":0,"entries":2,"bytes":208},
//!  "epoch_context":{"probe_memo":{"hits":0,"misses":0,"entries":0},
//!                   "machine_memo":{"hits":1,"misses":2,"entries":2},
//!                   "scc_served":0,
//!                   "carried":{"machine_entries":2,"probe_spaces":0}}}
//! ```
//!
//! ## `GET /metrics` — Prometheus exposition
//!
//! The whole stack's metrics in Prometheus text format (content type
//! `text/plain; version=0.0.4`), rendered from **one** instance-scoped
//! [`rq_common::Registry`]: the caches' own hit/miss counter cells
//! (adopted at service construction, so `/stats`, `:stats`, and
//! `/metrics` can never disagree), service counters
//! (`rq_queries_total`, `rq_ingests_total`, `rq_engine_*_total`),
//! report-derived gauges (`rq_epoch`, cache sizes, epoch-context memo
//! counters), and this server's own per-endpoint series:
//!
//! ```text
//! GET /metrics
//!
//! 200 OK
//! # HELP rq_http_request_seconds Wall-clock request latency, by endpoint.
//! # TYPE rq_http_request_seconds histogram
//! rq_http_request_seconds_bucket{endpoint="/query",le="1e-6"} 0
//! …
//! rq_http_request_seconds_sum{endpoint="/query"} 0.000213
//! rq_http_request_seconds_count{endpoint="/query"} 2
//! # HELP rq_queries_total Queries evaluated by the service.
//! # TYPE rq_queries_total counter
//! rq_queries_total 2
//! ```
//!
//! Unknown paths fold into the `endpoint="other"` series so the label
//! set stays bounded.  Setting the `RQC_SLOW_QUERY_MS` environment
//! variable (or [`WireConfig::slow_query_ms`]) additionally logs any
//! request at or over the threshold as one JSON line on stderr with
//! its request id and slowest spans.
//!
//! ## `GET /healthz` — liveness
//!
//! ```text
//! 200 OK
//! {"status":"ok","epoch":1,"uptime_seconds":7}
//! ```
//!
//! # Protocol behavior
//!
//! * HTTP/1.1 persistent connections by default (`Connection: close`
//!   honored); pipelined requests are answered in order.
//! * Bodies are framed by `Content-Length` only; `Transfer-Encoding`
//!   is rejected (`400`), which also closes the request-smuggling
//!   ambiguity.  `POST` without a length is `411`.
//! * Oversized header sections are `431`, oversized bodies `413`
//!   (limits in [`http::Limits`]); both close the connection since the
//!   stream position is no longer trustworthy.
//! * `Expect: 100-continue` is honored.
//!
//! # Serving
//!
//! `rqc serve <program.dl> --http <addr>` binds this server in front
//! of the same session the REPL would serve.  Embedders do the same in
//! three lines:
//!
//! ```
//! use std::sync::Arc;
//! let service = Arc::new(rq_service::QueryService::from_source(
//!     "tc(X,Y) :- e(X,Y).\n tc(X,Z) :- e(X,Y), tc(Y,Z).\n e(a,b). e(b,c).",
//! ).unwrap());
//! let server = rq_wire::WireServer::bind(
//!     Arc::clone(&service),
//!     "127.0.0.1:0", // port 0: let the OS pick
//!     rq_wire::WireConfig::default(),
//! ).unwrap();
//! let handle = server.spawn().unwrap();
//!
//! // Speak plain HTTP to it.
//! use std::io::{Read, Write};
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! let body = r#"{"query": "tc(a, Y)"}"#;
//! write!(conn, "POST /query HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
//!        body.len(), body).unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200 OK"));
//! assert!(response.contains(r#""rows":[["b"],["c"]]"#));
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod http;
pub mod server;

pub use api::{handle, ApiResponse};
pub use http::Limits;
pub use server::{ServerHandle, WireConfig, WireServer};
