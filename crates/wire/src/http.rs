//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The build environment has no registry access, so — like the
//! `shims/` crates — this module implements exactly the protocol
//! subset the service needs and nothing more:
//!
//! * request line + headers + `Content-Length`-framed bodies (no
//!   chunked transfer encoding — requests carrying
//!   `Transfer-Encoding` are rejected outright, which also closes the
//!   classic request-smuggling ambiguity);
//! * persistent connections (`keep-alive` is the HTTP/1.1 default;
//!   `Connection: close` and HTTP/1.0 semantics are honored), which
//!   makes pipelined requests work for free: requests are read
//!   back-to-back off one buffered stream;
//! * `Expect: 100-continue` (the interim response is written before
//!   the body is read, so `curl -d @large-file` does not stall);
//! * hard limits on header-section and body sizes, with the proper
//!   `431`/`413`/`411` status codes, so an untrusted peer cannot make
//!   the server buffer unbounded input.

use std::io::{BufRead, Read, Write};

/// Size limits applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (`431` beyond).
    pub max_head_bytes: usize,
    /// Maximum body bytes (`413` beyond).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 << 10,
            max_body_bytes: 1 << 20,
        }
    }
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method token, e.g. `GET`.
    pub method: String,
    /// The request target, e.g. `/query` (query strings are kept
    /// verbatim; the service's endpoints use none).
    pub path: String,
    /// Whether the request spoke HTTP/1.1 (anything else is treated as
    /// HTTP/1.0: no keep-alive unless asked for explicitly).
    pub http11: bool,
    /// Header `(name, value)` pairs; names lowercased at parse time.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes, already read).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an
    /// explicit `Connection:` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// A transport error (includes read timeouts).
    Io(std::io::Error),
    /// The bytes were not a parseable HTTP request.  Respond `400`.
    Malformed(String),
    /// Request line + headers exceeded [`Limits::max_head_bytes`].
    /// Respond `431`.
    HeadTooLarge,
    /// `Content-Length` exceeded [`Limits::max_body_bytes`].  Respond
    /// `413`.  The body was not read, so the connection must close.
    BodyTooLarge(u64),
    /// A request with a body arrived without `Content-Length`.
    /// Respond `411`.
    LengthRequired,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Io(e) => write!(f, "transport error: {e}"),
            RequestError::Malformed(why) => write!(f, "malformed request: {why}"),
            RequestError::HeadTooLarge => write!(f, "request head too large"),
            RequestError::BodyTooLarge(n) => write!(f, "request body of {n} bytes too large"),
            RequestError::LengthRequired => write!(f, "content-length required"),
        }
    }
}

/// Read one request head (request line + headers) off `reader`.  The
/// body is **not** read yet — callers honoring `Expect: 100-continue`
/// write the interim response first, then call [`read_body`].
pub fn read_head(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, RequestError> {
    let mut head_bytes = 0usize;
    // Tolerate a few stray blank lines between pipelined requests
    // (bounded, so a CRLF stream cannot spin the reader forever).
    let mut request_line = String::new();
    for blanks in 0.. {
        match read_crlf_line(reader, limits, &mut head_bytes)? {
            None => return Err(RequestError::Closed),
            Some(line) if line.is_empty() && blanks < 4 => continue,
            Some(line) if line.is_empty() => {
                return Err(RequestError::Malformed("blank lines only".into()))
            }
            Some(line) => {
                request_line = line;
                break;
            }
        }
    }
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }
    if !path.starts_with('/') {
        return Err(RequestError::Malformed(format!(
            "request target `{path}` is not origin-form"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let Some(line) = read_crlf_line(reader, limits, &mut head_bytes)? else {
            return Err(RequestError::Malformed(
                "connection closed mid-request".into(),
            ));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header line without `:`: `{line}`"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method,
        path,
        http11: version == "HTTP/1.1",
        headers,
        body: Vec::new(),
    })
}

/// Read the request body announced by `request`'s headers into
/// `request.body`, enforcing [`Limits::max_body_bytes`].
pub fn read_body(
    reader: &mut impl BufRead,
    request: &mut Request,
    limits: &Limits,
) -> Result<(), RequestError> {
    if request.header("transfer-encoding").is_some() {
        // No chunked support; rejecting outright also forecloses
        // TE/CL request-smuggling ambiguity.
        return Err(RequestError::Malformed(
            "transfer-encoding is not supported; frame the body with content-length".into(),
        ));
    }
    let length = match request.header("content-length") {
        Some(text) => text
            .trim()
            .parse::<u64>()
            .map_err(|_| RequestError::Malformed(format!("bad content-length `{text}`")))?,
        None if matches!(request.method.as_str(), "POST" | "PUT" | "PATCH") => {
            return Err(RequestError::LengthRequired)
        }
        None => 0,
    };
    if length > limits.max_body_bytes as u64 {
        return Err(RequestError::BodyTooLarge(length));
    }
    let mut body = vec![0u8; length as usize];
    reader.read_exact(&mut body).map_err(RequestError::Io)?;
    request.body = body;
    Ok(())
}

/// Read one CRLF-terminated line, charging its bytes against the head
/// budget.  Lone-LF line endings are tolerated; `None` means the
/// stream ended before any byte of this line.
fn read_crlf_line(
    reader: &mut impl BufRead,
    limits: &Limits,
    head_bytes: &mut usize,
) -> Result<Option<String>, RequestError> {
    let mut raw = Vec::new();
    // Bound the read itself, not just the accumulated total: `take`
    // caps how much one unterminated line can buffer.
    let budget = (limits.max_head_bytes - *head_bytes + 1) as u64;
    let read = reader
        .take(budget)
        .read_until(b'\n', &mut raw)
        .map_err(RequestError::Io)?;
    if read == 0 {
        return Ok(None);
    }
    *head_bytes += read;
    if *head_bytes > limits.max_head_bytes {
        return Err(RequestError::HeadTooLarge);
    }
    if raw.last() != Some(&b'\n') {
        return Err(RequestError::Malformed("unterminated header line".into()));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| RequestError::Malformed("non-UTF-8 header bytes".into()))
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write one response.  `content_type` names the body's media type
/// (JSON everywhere except the Prometheus `/metrics` exposition);
/// `keep_alive` decides the `Connection` header; the caller closes the
/// stream when it is `false`.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write the interim `100 Continue` response.
pub fn write_continue(stream: &mut impl Write) -> std::io::Result<()> {
    stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        let mut reader = BufReader::new(bytes);
        let limits = Limits::default();
        let mut request = read_head(&mut reader, &limits)?;
        read_body(&mut reader, &mut request, &limits)?;
        Ok(request)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
        assert!(req.keep_alive(), "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_get_without_length() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_header_overrides_keep_alive() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive());
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive(), "HTTP/1.0 defaults to close");
        let old_ka = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(old_ka.keep_alive());
    }

    #[test]
    fn missing_length_on_post_is_411() {
        assert!(matches!(
            parse(b"POST /query HTTP/1.1\r\n\r\n"),
            Err(RequestError::LengthRequired)
        ));
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let text = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            (1 << 20) + 1
        );
        assert!(matches!(
            parse(text.as_bytes()),
            Err(RequestError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn oversized_head_is_431() {
        let text = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(20 << 10));
        assert!(matches!(
            parse(text.as_bytes()),
            Err(RequestError::HeadTooLarge)
        ));
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_is_malformed_and_eof_is_closed() {
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(parse(b""), Err(RequestError::Closed)));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET http://absolute/ HTTP/1.1\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn pipelined_requests_read_back_to_back() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&bytes[..]);
        let limits = Limits::default();
        let mut paths = Vec::new();
        loop {
            match read_head(&mut reader, &limits) {
                Ok(mut req) => {
                    read_body(&mut reader, &mut req, &limits).unwrap();
                    paths.push(req.path.clone());
                }
                Err(RequestError::Closed) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(paths, vec!["/a", "/b", "/c"]);
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(
            &mut out,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            "x 1\n",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-type: text/plain; version=0.0.4; charset=utf-8\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }
}
