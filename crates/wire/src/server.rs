//! The TCP front end: a worker-pool accept loop feeding the pure
//! [`crate::api`] router over persistent HTTP/1.1 connections.
//!
//! The shape is deliberately simple — N OS threads, each blocked in
//! `accept`, each serving one connection at a time with keep-alive —
//! because the expensive work (traversal, joins) already parallelizes
//! *inside* the service: `query_batch` fans across its own workers and
//! each traversal can expand machine instances across threads.  The
//! wire workers only parse bytes and route; resolving their count
//! through the same `RQC_THREADS` cap as every other layer keeps the
//! process's total thread budget coherent.

use crate::api;
use crate::http::{self, Limits, RequestError};
use rq_common::obs::{self, Counter, Gauge, Histogram};
use rq_common::{Json, Registry};
use rq_service::QueryService;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Settings of one [`WireServer`].
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Accept-loop worker threads (each serves one connection at a
    /// time).  `0` means the machine's available parallelism.  Either
    /// way the count resolves through the `RQC_THREADS` cap, like
    /// every other thread pool in the workspace.
    pub workers: usize,
    /// Per-request size limits (header section and body).
    pub limits: Limits,
    /// Per-connection read timeout: an idle or stalled peer is
    /// disconnected after this long, so a worker can never be parked
    /// forever by a silent client.  `None` waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Maximum requests served on one connection before the server
    /// closes it (bounds how long one client can monopolize a worker).
    pub max_requests_per_connection: usize,
    /// Slow-query log threshold: a request that takes at least this
    /// many milliseconds is logged to stderr as one JSON line with its
    /// request id and the spans where the time went.  `None` disables
    /// the log.  The default reads the `RQC_SLOW_QUERY_MS` environment
    /// variable (unset ⇒ disabled).
    pub slow_query_ms: Option<u64>,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            limits: Limits::default(),
            read_timeout: Some(Duration::from_secs(30)),
            max_requests_per_connection: 10_000,
            slow_query_ms: std::env::var("RQC_SLOW_QUERY_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok()),
        }
    }
}

/// The HTTP server: a bound listener plus the shared [`QueryService`].
///
/// Bind first, then either [`WireServer::run`] (blocking — the `rqc
/// serve --http` path) or [`WireServer::spawn`] (background — tests
/// and embedding).
pub struct WireServer {
    listener: TcpListener,
    service: Arc<QueryService>,
    config: WireConfig,
    metrics: Arc<WireMetrics>,
}

/// Pre-resolved registry handles for the request loop: one counter +
/// latency histogram per endpoint (resolved once, not per request) and
/// the in-flight gauge.  Registered into the **service's** registry so
/// one `GET /metrics` scrape covers wire and service alike.
struct WireMetrics {
    /// Requests currently being routed (accepted, not yet answered).
    in_flight: Gauge,
    /// `(path, requests counter, latency histogram)` per endpoint; the
    /// last entry (`other`) absorbs unknown paths so the label set
    /// stays bounded no matter what clients probe.
    endpoints: Vec<(&'static str, Counter, Histogram)>,
}

/// The served endpoints, in routing order; unknown paths map to the
/// trailing `other`.
const ENDPOINTS: [&str; 7] = [
    "/query", "/batch", "/ingest", "/stats", "/healthz", "/metrics", "other",
];

impl WireMetrics {
    fn register(registry: &Registry) -> Self {
        let endpoints = ENDPOINTS
            .iter()
            .map(|&endpoint| {
                (
                    endpoint,
                    registry.counter_with(
                        "rq_http_requests_total",
                        "HTTP requests routed, by endpoint.",
                        &[("endpoint", endpoint)],
                    ),
                    registry.histogram_with(
                        "rq_http_request_seconds",
                        "Wall-clock request latency, by endpoint.",
                        &[("endpoint", endpoint)],
                    ),
                )
            })
            .collect();
        Self {
            in_flight: registry.gauge(
                "rq_http_in_flight",
                "Requests currently being served by wire workers.",
            ),
            endpoints,
        }
    }

    fn endpoint(&self, path: &str) -> &(&'static str, Counter, Histogram) {
        self.endpoints
            .iter()
            .find(|(name, _, _)| *name == path)
            .unwrap_or_else(|| self.endpoints.last().expect("endpoint table is non-empty"))
    }
}

impl WireServer {
    /// Bind `addr` (e.g. `127.0.0.1:7474`, or port `0` for an
    /// OS-assigned port) in front of `service`.
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: WireConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let metrics = Arc::new(WireMetrics::register(service.metrics()));
        Ok(Self {
            listener,
            service,
            config,
            metrics,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The worker count the accept loop will use: the configured
    /// number (or available parallelism for `0`), capped by
    /// `RQC_THREADS`.
    pub fn workers(&self) -> usize {
        let configured = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        rq_common::capped_threads(configured).max(1)
    }

    /// Serve until the process exits (the accept loop never stops on
    /// its own).  Connection-level errors are contained to their
    /// worker; they never take the server down.
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        for worker in handle.workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Start the accept loop on background threads and return a handle
    /// for address discovery and clean shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let workers = self.workers();
        let shutdown = Arc::new(AtomicBool::new(false));
        let listener = Arc::new(self.listener);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = Arc::clone(&listener);
            let service = Arc::clone(&self.service);
            let config = self.config.clone();
            let metrics = Arc::clone(&self.metrics);
            let shutdown = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if shutdown.load(Ordering::Relaxed) {
                                break;
                            }
                            // One connection at a time per worker; any
                            // I/O error just drops the connection.
                            let _ = serve_connection(&service, &metrics, stream, &config);
                        }
                        Err(_) => {
                            // Transient accept errors (EMFILE, aborted
                            // handshakes) must not kill the worker.
                            std::thread::yield_now();
                        }
                    }
                }
            }));
        }
        Ok(ServerHandle {
            addr,
            shutdown,
            workers: handles,
        })
    }
}

/// A running server started by [`WireServer::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every worker, and join them.  Connections
    /// already being served finish their current request.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Each wake-up connection unblocks at most one worker's
        // `accept`; workers re-check the flag and exit.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Serve one connection: read requests back-to-back (keep-alive and
/// pipelining fall out of reading sequentially from one buffered
/// stream), route each through the API, and write the response.
fn serve_connection(
    service: &QueryService,
    metrics: &WireMetrics,
    stream: TcpStream,
    config: &WireConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for served in 0..config.max_requests_per_connection {
        let mut request = match http::read_head(&mut reader, &config.limits) {
            Ok(request) => request,
            Err(RequestError::Closed) => return Ok(()),
            Err(e) => return refuse(&mut writer, e),
        };
        // `Expect: 100-continue` peers wait for the interim response
        // before sending the body.
        if request
            .header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        {
            http::write_continue(&mut writer)?;
        }
        if let Err(e) = http::read_body(&mut reader, &mut request, &config.limits) {
            return refuse(&mut writer, e);
        }
        // The last request this connection is allowed must say so:
        // advertising keep-alive and then closing would surprise a
        // pipelining client mid-request.
        let last_allowed = served + 1 == config.max_requests_per_connection;
        let keep_alive = request.keep_alive() && !last_allowed;
        let request_id = obs::next_request_id();
        let (_, requests, latency) = metrics.endpoint(&request.path);
        metrics.in_flight.add(1);
        // The slow-query log needs spans to point at; arm a trace for
        // the whole request when the log is on.  `/query` traces
        // compose with it (`trace_since`) and stay untouched.
        if config.slow_query_ms.is_some() {
            obs::trace_start();
        }
        let start = Instant::now();
        let response = api::handle(service, &request.method, &request.path, &request.body);
        let elapsed = start.elapsed();
        latency.observe(elapsed);
        requests.inc();
        metrics.in_flight.sub(1);
        if let Some(threshold_ms) = config.slow_query_ms {
            let spans = obs::trace_finish();
            if elapsed.as_millis() as u64 >= threshold_ms {
                log_slow_request(
                    request_id,
                    &request.method,
                    &request.path,
                    &response,
                    elapsed,
                    &spans,
                );
            }
        }
        http::write_response(
            &mut writer,
            response.status,
            response.content_type(),
            &response.payload(),
            keep_alive,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

/// Emit one slow-request JSON line to stderr: request id, route,
/// status, elapsed time, and the longest spans (name + duration) so
/// the log points at where the time went without needing a client-side
/// trace.
fn log_slow_request(
    request_id: u64,
    method: &str,
    path: &str,
    response: &api::ApiResponse,
    elapsed: Duration,
    spans: &[obs::SpanRec],
) {
    let mut slowest: Vec<&obs::SpanRec> = spans.iter().collect();
    slowest.sort_by_key(|s| std::cmp::Reverse(s.dur_ns));
    slowest.truncate(8);
    let spans_json: Vec<Json> = slowest
        .iter()
        .map(|s| {
            Json::object([
                ("name", Json::Str(s.name.to_string())),
                ("dur_us", Json::Int((s.dur_ns / 1_000) as i64)),
            ])
        })
        .collect();
    let line = Json::object([
        ("slow_request", Json::Bool(true)),
        (
            "request_id",
            Json::Int(request_id.min(i64::MAX as u64) as i64),
        ),
        ("method", Json::Str(method.to_string())),
        ("path", Json::Str(path.to_string())),
        ("status", Json::Int(response.status as i64)),
        (
            "elapsed_ms",
            Json::Int(elapsed.as_millis().min(i64::MAX as u128) as i64),
        ),
        ("spans", Json::Array(spans_json)),
    ]);
    eprintln!("{}", line.encode());
}

/// Answer a protocol-level failure with its status code and close the
/// connection (after a framing error the stream position is
/// untrustworthy, so keep-alive is never offered).
fn refuse(writer: &mut TcpStream, error: RequestError) -> std::io::Result<()> {
    let status = match &error {
        RequestError::Closed => return Ok(()),
        RequestError::Io(_) => return Ok(()), // peer is gone; nothing to say
        RequestError::Malformed(_) => 400,
        RequestError::LengthRequired => 411,
        RequestError::BodyTooLarge(_) => 413,
        RequestError::HeadTooLarge => 431,
    };
    let body = Json::object([("error", Json::Str(error.to_string()))]).encode();
    http::write_response(writer, status, "application/json", &body, false)
}
