//! The TCP front end: a worker-pool accept loop feeding the pure
//! [`crate::api`] router over persistent HTTP/1.1 connections.
//!
//! The shape is deliberately simple — N OS threads, each blocked in
//! `accept`, each serving one connection at a time with keep-alive —
//! because the expensive work (traversal, joins) already parallelizes
//! *inside* the service: `query_batch` fans across its own workers and
//! each traversal can expand machine instances across threads.  The
//! wire workers only parse bytes and route; resolving their count
//! through the same `RQC_THREADS` cap as every other layer keeps the
//! process's total thread budget coherent.

use crate::api;
use crate::http::{self, Limits, RequestError};
use rq_common::Json;
use rq_service::QueryService;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Settings of one [`WireServer`].
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Accept-loop worker threads (each serves one connection at a
    /// time).  `0` means the machine's available parallelism.  Either
    /// way the count resolves through the `RQC_THREADS` cap, like
    /// every other thread pool in the workspace.
    pub workers: usize,
    /// Per-request size limits (header section and body).
    pub limits: Limits,
    /// Per-connection read timeout: an idle or stalled peer is
    /// disconnected after this long, so a worker can never be parked
    /// forever by a silent client.  `None` waits indefinitely.
    pub read_timeout: Option<Duration>,
    /// Maximum requests served on one connection before the server
    /// closes it (bounds how long one client can monopolize a worker).
    pub max_requests_per_connection: usize,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            limits: Limits::default(),
            read_timeout: Some(Duration::from_secs(30)),
            max_requests_per_connection: 10_000,
        }
    }
}

/// The HTTP server: a bound listener plus the shared [`QueryService`].
///
/// Bind first, then either [`WireServer::run`] (blocking — the `rqc
/// serve --http` path) or [`WireServer::spawn`] (background — tests
/// and embedding).
pub struct WireServer {
    listener: TcpListener,
    service: Arc<QueryService>,
    config: WireConfig,
}

impl WireServer {
    /// Bind `addr` (e.g. `127.0.0.1:7474`, or port `0` for an
    /// OS-assigned port) in front of `service`.
    pub fn bind(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: WireConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            service,
            config,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The worker count the accept loop will use: the configured
    /// number (or available parallelism for `0`), capped by
    /// `RQC_THREADS`.
    pub fn workers(&self) -> usize {
        let configured = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };
        rq_common::capped_threads(configured).max(1)
    }

    /// Serve until the process exits (the accept loop never stops on
    /// its own).  Connection-level errors are contained to their
    /// worker; they never take the server down.
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        for worker in handle.workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Start the accept loop on background threads and return a handle
    /// for address discovery and clean shutdown.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let workers = self.workers();
        let shutdown = Arc::new(AtomicBool::new(false));
        let listener = Arc::new(self.listener);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let listener = Arc::clone(&listener);
            let service = Arc::clone(&self.service);
            let config = self.config.clone();
            let shutdown = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            if shutdown.load(Ordering::Relaxed) {
                                break;
                            }
                            // One connection at a time per worker; any
                            // I/O error just drops the connection.
                            let _ = serve_connection(&service, stream, &config);
                        }
                        Err(_) => {
                            // Transient accept errors (EMFILE, aborted
                            // handshakes) must not kill the worker.
                            std::thread::yield_now();
                        }
                    }
                }
            }));
        }
        Ok(ServerHandle {
            addr,
            shutdown,
            workers: handles,
        })
    }
}

/// A running server started by [`WireServer::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake every worker, and join them.  Connections
    /// already being served finish their current request.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Each wake-up connection unblocks at most one worker's
        // `accept`; workers re-check the flag and exit.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Serve one connection: read requests back-to-back (keep-alive and
/// pipelining fall out of reading sequentially from one buffered
/// stream), route each through the API, and write the response.
fn serve_connection(
    service: &QueryService,
    stream: TcpStream,
    config: &WireConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    for served in 0..config.max_requests_per_connection {
        let mut request = match http::read_head(&mut reader, &config.limits) {
            Ok(request) => request,
            Err(RequestError::Closed) => return Ok(()),
            Err(e) => return refuse(&mut writer, e),
        };
        // `Expect: 100-continue` peers wait for the interim response
        // before sending the body.
        if request
            .header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
        {
            http::write_continue(&mut writer)?;
        }
        if let Err(e) = http::read_body(&mut reader, &mut request, &config.limits) {
            return refuse(&mut writer, e);
        }
        // The last request this connection is allowed must say so:
        // advertising keep-alive and then closing would surprise a
        // pipelining client mid-request.
        let last_allowed = served + 1 == config.max_requests_per_connection;
        let keep_alive = request.keep_alive() && !last_allowed;
        let response = api::handle(service, &request.method, &request.path, &request.body);
        http::write_response(
            &mut writer,
            response.status,
            &response.body.encode(),
            keep_alive,
        )?;
        if !keep_alive {
            return Ok(());
        }
    }
    Ok(())
}

/// Answer a protocol-level failure with its status code and close the
/// connection (after a framing error the stream position is
/// untrustworthy, so keep-alive is never offered).
fn refuse(writer: &mut TcpStream, error: RequestError) -> std::io::Result<()> {
    let status = match &error {
        RequestError::Closed => return Ok(()),
        RequestError::Io(_) => return Ok(()), // peer is gone; nothing to say
        RequestError::Malformed(_) => 400,
        RequestError::LengthRequired => 411,
        RequestError::BodyTooLarge(_) => 413,
        RequestError::HeadTooLarge => 431,
    };
    let body = Json::object([("error", Json::Str(error.to_string()))]).encode();
    http::write_response(writer, status, &body, false)
}
