//! The JSON-over-HTTP API surface: pure request → response routing,
//! testable without a socket.
//!
//! Every response body is JSON.  Endpoint semantics deliberately
//! mirror the `rqc serve` REPL, so a query means the same thing
//! whichever front end carries it; see the crate docs for verbatim
//! request/response examples.

use rq_common::{obs, Json};
use rq_service::{QueryService, QuerySpec, ServiceAnswer, ServiceError, Snapshot};
use std::sync::Arc;

/// A routed response: HTTP status plus body — JSON for every endpoint
/// except `GET /metrics`, whose body is Prometheus text.
#[derive(Clone, Debug, PartialEq)]
pub struct ApiResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The JSON response body (ignored when [`ApiResponse::text`] is
    /// set).
    pub body: Json,
    /// A plain-text body; `Some` only for `GET /metrics`.
    pub text: Option<String>,
}

impl ApiResponse {
    fn ok(body: Json) -> Self {
        Self {
            status: 200,
            body,
            text: None,
        }
    }

    fn plain(text: String) -> Self {
        Self {
            status: 200,
            body: Json::Null,
            text: Some(text),
        }
    }

    /// A `{"error": …}` body under `status`.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            body: Json::object([("error", Json::Str(message.into()))]),
            text: None,
        }
    }

    /// The `content-type` this response must be served with.
    pub fn content_type(&self) -> &'static str {
        if self.text.is_some() {
            // The Prometheus text exposition format's registered type.
            "text/plain; version=0.0.4; charset=utf-8"
        } else {
            "application/json"
        }
    }

    /// The encoded body bytes to put on the wire.
    pub fn payload(&self) -> String {
        match &self.text {
            Some(text) => text.clone(),
            None => self.body.encode(),
        }
    }
}

/// Route one request to its endpoint.  `body` is the raw request body
/// (decoded as JSON where the endpoint takes one).
pub fn handle(service: &QueryService, method: &str, path: &str, body: &[u8]) -> ApiResponse {
    match (method, path) {
        ("GET", "/healthz") => ApiResponse::ok(Json::object([
            ("status", Json::Str("ok".into())),
            ("epoch", Json::Int(service.snapshot().epoch() as i64)),
            (
                "uptime_seconds",
                Json::Int(service.uptime().as_secs().min(i64::MAX as u64) as i64),
            ),
        ])),
        ("GET", "/stats") => ApiResponse::ok(service.stats_report().to_json()),
        ("GET", "/metrics") => ApiResponse::plain(service.metrics_prometheus()),
        ("POST", "/query") => match parse_json_body(body) {
            Ok(json) => query_endpoint(service, &json),
            Err(resp) => resp,
        },
        ("POST", "/batch") => match parse_json_body(body) {
            Ok(json) => batch_endpoint(service, &json),
            Err(resp) => resp,
        },
        ("POST", "/ingest") => match parse_json_body(body) {
            Ok(json) => ingest_endpoint(service, &json),
            Err(resp) => resp,
        },
        (_, "/healthz" | "/stats" | "/metrics") => ApiResponse::error(405, "use GET"),
        (_, "/query" | "/batch" | "/ingest") => ApiResponse::error(405, "use POST"),
        _ => ApiResponse::error(
            404,
            format!("no endpoint `{path}`; try /query /batch /ingest /stats /healthz /metrics"),
        ),
    }
}

fn parse_json_body(body: &[u8]) -> Result<Json, ApiResponse> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiResponse::error(400, "request body is not UTF-8"))?;
    Json::parse(text).map_err(|e| ApiResponse::error(400, format!("request body is not JSON: {e}")))
}

/// `POST /query` — answer one query text on the current snapshot.
/// `{"trace": true}` additionally records the evaluation's span tree
/// and returns it under `"trace"`.
fn query_endpoint(service: &QueryService, json: &Json) -> ApiResponse {
    let Some(text) = json.get("query").and_then(Json::as_str) else {
        return ApiResponse::error(400, "body must be {\"query\": \"pred(arg, …)\"}");
    };
    let trace = json.get("trace").and_then(Json::as_bool).unwrap_or(false);
    let snapshot = service.snapshot();
    let (result, spans) = if trace {
        if obs::trace_active() {
            // The server is already tracing this request (slow-query
            // log): take only our slice, leave the buffer running.
            let mark = obs::trace_mark();
            let result = answer_one(service, &snapshot, text);
            (result, obs::trace_since(mark))
        } else {
            obs::trace_start();
            let result = answer_one(service, &snapshot, text);
            (result, obs::trace_finish())
        }
    } else {
        (answer_one(service, &snapshot, text), Vec::new())
    };
    match result {
        Ok(mut answer) => {
            if trace {
                if let Json::Object(pairs) = &mut answer {
                    pairs.push(("trace".to_string(), obs::trace_to_json(&spans)));
                }
            }
            ApiResponse::ok(answer)
        }
        Err(e) => ApiResponse::error(400, e.to_string()),
    }
}

/// `POST /batch` — answer many query texts as one batch on one
/// snapshot; per-query errors are reported inline so one bad query
/// cannot fail its neighbors.
fn batch_endpoint(service: &QueryService, json: &Json) -> ApiResponse {
    let Some(texts) = json.get("queries").and_then(Json::as_array) else {
        return ApiResponse::error(400, "body must be {\"queries\": [\"pred(arg, …)\", …]}");
    };
    let mut queries: Vec<String> = Vec::with_capacity(texts.len());
    for (i, t) in texts.iter().enumerate() {
        match t.as_str() {
            Some(text) => queries.push(text.to_string()),
            None => return ApiResponse::error(400, format!("queries[{i}] is not a string")),
        }
    }
    let snapshot = service.snapshot();
    // Parse everything against one snapshot and evaluate pinned to
    // that same snapshot (`query_batch_on`): a concurrent /ingest
    // between capture and evaluation must not hand back rows whose
    // constants this snapshot's interner has never seen.  Answers are
    // routed back to their slot, mirroring the REPL's `a; b; c` line.
    let parsed: Vec<Result<Option<QuerySpec>, ServiceError>> = queries
        .iter()
        .map(|text| match service.parse_query(text) {
            Ok(spec) => Ok(Some(spec)),
            // A query over a constant the program has never seen is
            // semantically empty, not an error (same as the REPL).
            Err(ServiceError::UnknownConstant(_)) => Ok(None),
            Err(e) => Err(e),
        })
        .collect();
    let specs: Vec<QuerySpec> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok().cloned().flatten())
        .collect();
    let mut answers = service.query_batch_on(&snapshot, &specs).into_iter();
    let items: Vec<Json> = queries
        .iter()
        .zip(&parsed)
        .map(|(text, slot)| match slot {
            Err(e) => Json::object([
                ("query", Json::Str(text.clone())),
                ("error", Json::Str(e.to_string())),
            ]),
            Ok(None) => empty_answer_json(text, &snapshot),
            Ok(Some(spec)) => match answers.next().expect("one answer per parsed spec") {
                Err(e) => Json::object([
                    ("query", Json::Str(text.clone())),
                    ("error", Json::Str(e.to_string())),
                ]),
                Ok(answer) => answer_json(text, spec, &answer, &snapshot),
            },
        })
        .collect();
    ApiResponse::ok(Json::object([
        ("epoch", Json::Int(snapshot.epoch() as i64)),
        ("answers", Json::Array(items)),
    ]))
}

/// `POST /ingest` — publish fact clauses as the next epoch.  Bad
/// batches are rejected by the service before any copy-on-write clone,
/// so a failed ingest costs nothing and publishes nothing.
fn ingest_endpoint(service: &QueryService, json: &Json) -> ApiResponse {
    let Some(facts) = json.get("facts").and_then(Json::as_str) else {
        return ApiResponse::error(400, "body must be {\"facts\": \"e(a,b). e(b,c).\"}");
    };
    match service.ingest(facts) {
        Ok(snap) => ApiResponse::ok(Json::object([
            ("epoch", Json::Int(snap.epoch() as i64)),
            ("tuples", Json::Int(snap.db().total_tuples() as i64)),
            // `true` means the epoch's write-ahead-log record was
            // persisted (and, under `FsyncPolicy::Always`, fsynced)
            // before this acknowledgement; `false` means the service
            // is in-memory and the epoch dies with the process.
            ("durable", Json::Bool(service.durable())),
            (
                "dirty",
                Json::Array({
                    let mut names: Vec<String> = snap
                        .dirty_preds()
                        .iter()
                        .map(|&p| snap.program().pred_name(p).to_string())
                        .collect();
                    names.sort_unstable();
                    names.into_iter().map(Json::Str).collect()
                }),
            ),
        ])),
        Err(e) => ApiResponse::error(400, e.to_string()),
    }
}

/// Answer a single query text, mapping unknown constants to the
/// semantically empty answer (same contract as the REPL).
fn answer_one(
    service: &QueryService,
    snapshot: &Arc<Snapshot>,
    text: &str,
) -> Result<Json, ServiceError> {
    match service.parse_query(text) {
        Ok(spec) => {
            let answer = service.query_on(snapshot, &spec)?;
            Ok(answer_json(text, &spec, &answer, snapshot))
        }
        Err(ServiceError::UnknownConstant(_)) => Ok(empty_answer_json(text, snapshot)),
        Err(e) => Err(e),
    }
}

/// The JSON shape of one served answer.
fn answer_json(text: &str, spec: &QuerySpec, answer: &ServiceAnswer, snapshot: &Snapshot) -> Json {
    let consts = &snapshot.program().consts;
    let rows: Vec<Json> = answer
        .rows
        .iter()
        .map(|row| {
            Json::Array(
                row.iter()
                    .map(|&c| match consts.value(c) {
                        rq_common::ConstValue::Int(i) => Json::Int(*i),
                        _ => Json::Str(consts.display(c)),
                    })
                    .collect(),
            )
        })
        .collect();
    let mut pairs = vec![
        ("query", Json::Str(text.to_string())),
        ("epoch", Json::Int(answer.epoch as i64)),
        ("rows", Json::Array(rows)),
        ("converged", Json::Bool(answer.converged)),
        ("from_cache", Json::Bool(answer.from_cache)),
    ];
    if spec.free_positions().is_empty() {
        // Fully bound membership: make yes/no explicit rather than
        // forcing clients to decode the `[[]]`-versus-`[]` encoding.
        pairs.insert(2, ("holds", Json::Bool(answer.holds())));
    }
    Json::object(pairs)
}

/// The answer for a query that is empty by construction (it names a
/// constant the program and data have never seen).
fn empty_answer_json(text: &str, snapshot: &Snapshot) -> Json {
    let fully_bound = query_text_has_no_free_args(text);
    let mut pairs = vec![
        ("query", Json::Str(text.to_string())),
        ("epoch", Json::Int(snapshot.epoch() as i64)),
        ("rows", Json::Array(Vec::new())),
        ("converged", Json::Bool(true)),
        ("from_cache", Json::Bool(false)),
    ];
    if fully_bound {
        pairs.insert(2, ("holds", Json::Bool(false)));
    }
    Json::object(pairs)
}

/// Whether a query text binds every argument (no uppercase- or
/// `_`-led argument) — the membership form, whose empty answer is the
/// definitive `holds: false`.
fn query_text_has_no_free_args(text: &str) -> bool {
    let (Some(open), Some(close)) = (text.find('('), text.rfind(')')) else {
        return false;
    };
    if open + 1 > close {
        return false;
    }
    text[open + 1..close].split(',').all(|arg| {
        !matches!(
            arg.trim().chars().next(),
            Some(c) if c.is_ascii_uppercase() || c == '_'
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c).";

    fn service() -> QueryService {
        QueryService::from_source(TC).unwrap()
    }

    fn post(service: &QueryService, path: &str, body: &str) -> ApiResponse {
        handle(service, "POST", path, body.as_bytes())
    }

    #[test]
    fn healthz_reports_epoch_and_uptime() {
        let s = service();
        let resp = handle(&s, "GET", "/healthz", b"");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(resp.body.get("epoch").and_then(Json::as_i64), Some(0));
        assert!(resp.body.get("uptime_seconds").and_then(Json::as_i64) >= Some(0));
        post(&s, "/ingest", r#"{"facts": "e(c,d)."}"#);
        let resp = handle(&s, "GET", "/healthz", b"");
        assert_eq!(resp.body.get("epoch").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn metrics_serves_prometheus_text() {
        let s = service();
        post(&s, "/query", r#"{"query": "tc(a, Y)"}"#);
        let resp = handle(&s, "GET", "/metrics", b"");
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.content_type(),
            "text/plain; version=0.0.4; charset=utf-8"
        );
        let text = resp.text.as_deref().unwrap();
        assert_eq!(resp.payload(), text);
        assert!(text.contains("# TYPE rq_queries_total counter\n"), "{text}");
        assert!(text.contains("rq_queries_total 1\n"));
        assert!(text.contains("rq_result_cache_misses_total 1\n"));
        assert!(text.contains("rq_epoch 0\n"));
        // JSON endpoints keep their content type.
        let healthz = handle(&s, "GET", "/healthz", b"");
        assert_eq!(healthz.content_type(), "application/json");
        assert_eq!(handle(&s, "POST", "/metrics", b"").status, 405);
    }

    #[test]
    fn query_trace_returns_a_span_tree() {
        let s = service();
        let resp = post(&s, "/query", r#"{"query": "tc(a, Y)", "trace": true}"#);
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let trace = resp.body.get("trace").expect("trace field");
        // One root: the service.query span, with its children nested
        // and the root covering at least the sum of its children.
        assert_eq!(
            trace.get("name").and_then(Json::as_str),
            Some("service.query")
        );
        let root_dur = trace.get("dur_ns").and_then(Json::as_i64).unwrap();
        let children = trace.get("children").and_then(Json::as_array).unwrap();
        assert!(!children.is_empty(), "expected nested spans: {trace:?}");
        assert!(children
            .iter()
            .any(|c| c.get("name").and_then(Json::as_str) == Some("engine.traverse")));
        let child_sum: i64 = children
            .iter()
            .filter_map(|c| c.get("dur_ns").and_then(Json::as_i64))
            .sum();
        assert!(root_dur >= child_sum, "{root_dur} < {child_sum}");
        // Without the flag there is no trace field, and no buffer is
        // left armed on this thread.
        let plain = post(&s, "/query", r#"{"query": "tc(a, Y)"}"#);
        assert_eq!(plain.body.get("trace"), None);
        assert!(!obs::trace_active());
    }

    #[test]
    fn query_answers_rows() {
        let s = service();
        let resp = post(&s, "/query", r#"{"query": "tc(a, Y)"}"#);
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let rows = resp.body.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("b"));
        assert_eq!(
            resp.body.get("converged").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(resp.body.get("holds"), None, "free query has no holds");
    }

    #[test]
    fn membership_queries_report_holds() {
        let s = service();
        let yes = post(&s, "/query", r#"{"query": "tc(a, c)"}"#);
        assert_eq!(yes.body.get("holds").and_then(Json::as_bool), Some(true));
        let no = post(&s, "/query", r#"{"query": "tc(c, a)"}"#);
        assert_eq!(no.body.get("holds").and_then(Json::as_bool), Some(false));
        // Unknown constants are semantically empty, not errors.
        let unseen = post(&s, "/query", r#"{"query": "tc(a, zz)"}"#);
        assert_eq!(unseen.status, 200);
        assert_eq!(
            unseen.body.get("holds").and_then(Json::as_bool),
            Some(false)
        );
    }

    #[test]
    fn query_errors_are_400_with_reason() {
        let s = service();
        for (body, needle) in [
            (r#"{"query": "zzz(a, Y)"}"#, "unknown predicate"),
            (r#"{"query": "e(a, Y)"}"#, "base predicate"),
            (r#"{"query": "tc(a"}"#, "malformed"),
            (r#"{"nope": 1}"#, "body must be"),
            (r#"{"#, "not JSON"),
        ] {
            let resp = post(&s, "/query", body);
            assert_eq!(resp.status, 400, "{body}");
            let error = resp.body.get("error").and_then(Json::as_str).unwrap();
            assert!(error.contains(needle), "{body}: {error}");
        }
    }

    #[test]
    fn batch_mixes_answers_and_inline_errors() {
        let s = service();
        let resp = post(
            &s,
            "/batch",
            r#"{"queries": ["tc(a, Y)", "zzz(a, Y)", "tc(a, b)", "tc(unseen, Y)"]}"#,
        );
        assert_eq!(resp.status, 200);
        let answers = resp.body.get("answers").and_then(Json::as_array).unwrap();
        assert_eq!(answers.len(), 4);
        assert_eq!(
            answers[0]
                .get("rows")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            2
        );
        assert!(answers[1]
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("zzz"));
        assert_eq!(answers[2].get("holds").and_then(Json::as_bool), Some(true));
        let empty = answers[3].get("rows").and_then(Json::as_array).unwrap();
        assert!(empty.is_empty());
        assert_eq!(answers[3].get("holds"), None, "free query, no holds field");
    }

    #[test]
    fn ingest_publishes_and_reports_dirty_preds() {
        let s = service();
        let resp = post(&s, "/ingest", r#"{"facts": "e(c,d). w(a, 10)."}"#);
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        assert_eq!(resp.body.get("epoch").and_then(Json::as_i64), Some(1));
        let dirty: Vec<&str> = resp
            .body
            .get("dirty")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert_eq!(dirty, vec!["e", "w"]);
        // Integer constants come back as JSON numbers.
        let w = post(&s, "/query", r#"{"query": "tc(a, Y)"}"#);
        assert_eq!(
            w.body.get("rows").and_then(Json::as_array).unwrap().len(),
            3
        );
    }

    #[test]
    fn ingest_rejections_are_400_and_publish_nothing() {
        let s = service();
        for body in [
            r#"{"facts": "p(X,Y) :- e(X,Y)."}"#,
            r#"{"facts": "tc(a,b)."}"#,
            r#"{"facts": "e(a,"}"#,
            r#"{"nope": 1}"#,
        ] {
            let resp = post(&s, "/ingest", body);
            assert_eq!(resp.status, 400, "{body}");
        }
        assert_eq!(s.snapshot().epoch(), 0);
    }

    #[test]
    fn routing_404_and_405() {
        let s = service();
        assert_eq!(handle(&s, "GET", "/nope", b"").status, 404);
        assert_eq!(handle(&s, "POST", "/healthz", b"").status, 405);
        assert_eq!(handle(&s, "GET", "/query", b"").status, 405);
        assert_eq!(handle(&s, "DELETE", "/ingest", b"").status, 405);
    }

    #[test]
    fn stats_serves_the_shared_report() {
        let s = service();
        s.query(&s.parse_query("tc(a, Y)").unwrap()).unwrap();
        let resp = handle(&s, "GET", "/stats", b"");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, s.stats_report().to_json());
        assert!(resp.body.get("result_cache").is_some());
        assert!(resp.body.get("epoch_context").is_some());
    }

    #[test]
    fn integer_constants_round_trip_as_numbers() {
        let s = QueryService::from_source(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). flight(ams,720,cdg,810).\n\
             is_deptime(540). is_deptime(720).",
        )
        .unwrap();
        let resp = post(&s, "/query", r#"{"query": "cnx(hel, 540, D, AT)"}"#);
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        let rows = resp.body.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_array().unwrap();
        assert_eq!(first[0].as_str(), Some("ams"));
        assert_eq!(first[1].as_i64(), Some(690));
    }
}
