//! Minimal little-endian byte codec shared by the log/checkpoint
//! payload encoders in `rq-service` and the framing layer here.
//!
//! Writes are infallible (`Vec` growth); reads return a
//! [`CodecError`] on truncation or malformed length prefixes instead
//! of panicking — a corrupt payload must degrade into a counted
//! recovery drop, never a crash.

/// A decode failure: the payload ended early or carried a malformed
/// length prefix.  Deliberately message-only — recovery treats every
/// decode failure the same way (stop, count, serve what verified).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian writer over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far, consuming the writer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A length-prefixed (`u32`) byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(u32::try_from(v.len()).expect("payload segment over 4 GiB"));
        self.buf.extend_from_slice(v);
    }

    /// A length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Little-endian reader over a borrowed payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read `data` from the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the whole payload was consumed (decoders check this to
    /// reject trailing garbage).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| CodecError(format!("invalid UTF-8 string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_str("abcdef");
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 2);
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims a 4 GiB string
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).bytes().is_err());
    }
}
