//! Record framing and integrity: every persisted blob — one log record
//! per ingest, one checkpoint snapshot — travels inside a fixed-layout
//! frame whose CRC-32 lets recovery tell a committed record from a
//! torn or bit-rotted one.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! [magic: u32][epoch: u64][len: u32][crc: u32][payload: len bytes]
//! ```
//!
//! The CRC covers the epoch *and* the payload, so neither can be
//! silently patched without failing verification.  Log records and
//! checkpoints use distinct magics — a checkpoint blob accidentally
//! read as a log (or vice versa) is rejected at the first frame.

/// Frame magic of one write-ahead-log record (`RQL1`).
const LOG_MAGIC: u32 = u32::from_le_bytes(*b"RQL1");
/// Frame magic of one checkpoint snapshot (`RQC1`).
const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"RQC1");

/// Bytes of the fixed frame header preceding each payload.
pub const FRAME_HEADER_BYTES: usize = 4 + 8 + 4 + 4;

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// The CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(!0, bytes) ^ !0
}

/// The frame checksum: CRC-32 over the epoch's little-endian bytes
/// followed by the payload.
fn frame_crc(epoch: u64, payload: &[u8]) -> u32 {
    crc32_update(crc32_update(!0, &epoch.to_le_bytes()), payload) ^ !0
}

fn encode_frame(magic: u32, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload over 4 GiB");
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&frame_crc(epoch, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frame one write-ahead-log record.
pub fn encode_log_frame(epoch: u64, payload: &[u8]) -> Vec<u8> {
    encode_frame(LOG_MAGIC, epoch, payload)
}

/// Frame one checkpoint snapshot.
pub fn encode_checkpoint_frame(epoch: u64, payload: &[u8]) -> Vec<u8> {
    encode_frame(CKPT_MAGIC, epoch, payload)
}

/// Decode a checkpoint blob: exactly one whole checkpoint frame whose
/// CRC verifies.  `None` on any violation — a checkpoint is either
/// entirely trustworthy or unusable; there is no prefix to salvage.
pub fn decode_checkpoint_frame(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    let (frames, trailing) = scan_frames(CKPT_MAGIC, buf);
    match (frames.len(), trailing) {
        (1, 0) => frames.into_iter().next(),
        _ => None,
    }
}

/// The result of scanning a write-ahead log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Every record whose frame verified, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Frames the scan refused: `1` when the log carries a torn or
    /// corrupt frame (the scan stops there — anything after an
    /// unverifiable record is untrusted, so later frames are never
    /// counted individually).
    pub dropped_records: u64,
    /// Bytes from the first unverifiable frame to the end of the log.
    pub dropped_bytes: u64,
}

/// Scan a write-ahead log buffer into verified records, stopping at
/// the first frame that fails verification (truncated header, wrong
/// magic, length past the end of the buffer, or CRC mismatch).
/// Never panics on arbitrary input.
pub fn scan_log(buf: &[u8]) -> ScanOutcome {
    let (records, trailing) = scan_frames(LOG_MAGIC, buf);
    ScanOutcome {
        records,
        dropped_records: u64::from(trailing > 0),
        dropped_bytes: trailing as u64,
    }
}

/// Shared scanning core: verified `(epoch, payload)` frames plus the
/// count of trailing bytes that did not verify.
fn scan_frames(magic: u32, buf: &[u8]) -> (Vec<(u64, Vec<u8>)>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let rest = &buf[pos..];
        if rest.len() < FRAME_HEADER_BYTES {
            break; // torn header
        }
        let got_magic = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if got_magic != magic {
            break;
        }
        let epoch = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let len = u32::from_le_bytes(rest[12..16].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[16..20].try_into().unwrap());
        let Some(payload) = rest.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
            break; // torn payload
        };
        if frame_crc(epoch, payload) != crc {
            break; // bit rot / partial overwrite
        }
        records.push((epoch, payload.to_vec()));
        pos += FRAME_HEADER_BYTES + len;
    }
    (records, buf.len() - pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn log_frames_round_trip_in_order() {
        let mut log = Vec::new();
        for epoch in 1..=3u64 {
            log.extend_from_slice(&encode_log_frame(epoch, format!("p{epoch}").as_bytes()));
        }
        let out = scan_log(&log);
        assert_eq!(out.dropped_records, 0);
        assert_eq!(out.dropped_bytes, 0);
        assert_eq!(
            out.records,
            vec![
                (1, b"p1".to_vec()),
                (2, b"p2".to_vec()),
                (3, b"p3".to_vec())
            ]
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_counted() {
        let mut log = encode_log_frame(1, b"alpha");
        let whole = encode_log_frame(2, b"beta");
        log.extend_from_slice(&whole[..whole.len() - 3]); // torn mid-payload
        let out = scan_log(&log);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0], (1, b"alpha".to_vec()));
        assert_eq!(out.dropped_records, 1);
        assert_eq!(out.dropped_bytes, (whole.len() - 3) as u64);
    }

    #[test]
    fn flipped_byte_fails_crc_and_stops_the_scan() {
        let mut log = encode_log_frame(1, b"alpha");
        let first_len = log.len();
        log.extend_from_slice(&encode_log_frame(2, b"beta"));
        log.extend_from_slice(&encode_log_frame(3, b"gamma"));
        // Flip one payload byte of the middle record: the scan must
        // keep record 1, refuse record 2, and *not* resume at record 3.
        log[first_len + FRAME_HEADER_BYTES] ^= 0x40;
        let out = scan_log(&log);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].0, 1);
        assert_eq!(out.dropped_records, 1);
        assert!(out.dropped_bytes > 0);
    }

    #[test]
    fn epoch_is_covered_by_the_crc() {
        let mut log = encode_log_frame(7, b"payload");
        log[4] ^= 1; // patch the epoch field in place
        let out = scan_log(&log);
        assert!(out.records.is_empty());
        assert_eq!(out.dropped_records, 1);
    }

    #[test]
    fn absurd_length_prefix_cannot_panic_or_allocate() {
        let mut log = encode_log_frame(1, b"x");
        log[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let out = scan_log(&log);
        assert!(out.records.is_empty());
        assert_eq!(out.dropped_records, 1);
    }

    #[test]
    fn checkpoint_frames_are_strict_and_distinct_from_log_frames() {
        let frame = encode_checkpoint_frame(9, b"snapshot");
        assert_eq!(
            decode_checkpoint_frame(&frame),
            Some((9, b"snapshot".to_vec()))
        );
        // A log frame is not a checkpoint.
        assert_eq!(
            decode_checkpoint_frame(&encode_log_frame(9, b"snapshot")),
            None
        );
        // Trailing garbage disqualifies the whole blob.
        let mut padded = frame.clone();
        padded.push(0);
        assert_eq!(decode_checkpoint_frame(&padded), None);
        // A flipped byte disqualifies it too.
        let mut corrupt = frame;
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        assert_eq!(decode_checkpoint_frame(&corrupt), None);
    }
}
