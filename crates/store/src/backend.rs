//! Storage backends behind one trait: a heap-backed store for tests
//! (with raw-byte hooks for corruption injection) and a file-backed
//! store for production.

use crate::fault::FaultFile;
use crate::frame::{decode_checkpoint_frame, encode_checkpoint_frame, encode_log_frame, scan_log};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// When [`StorageBackend::append`] forces the record to stable media.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended record: an acknowledged ingest
    /// survives a power cut, not just a process kill.  The default.
    #[default]
    Always,
    /// Never `fsync`; the OS flushes on its own schedule.  Acknowledged
    /// ingests survive a process kill (the write syscall completed)
    /// but a whole-machine crash may tear the tail — which recovery
    /// handles, dropping the unverifiable suffix.
    Never,
}

/// Everything a backend recovered at open time.
///
/// Records are returned exactly as scanned — including records at or
/// below the checkpoint epoch (a crash between checkpoint install and
/// log truncation leaves such stale duplicates behind).  The replay
/// layer skips them by epoch and counts them; the backend never
/// silently discards a verifiable record.
///
/// An *unverifiable* tail (torn or corrupt) is a different matter:
/// [`StorageBackend::load`] reports it here **and physically truncates
/// the log to the verified prefix**.  Leaving the bad bytes in place
/// would put later appends after them, and the next recovery's scan —
/// which stops at the first bad frame — would silently drop every one
/// of those acknowledged records.  The dropped bytes themselves were
/// never acknowledged, so discarding them is safe.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The newest intact checkpoint, if any: `(epoch, payload)`.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Verified log records in log order: `(epoch, payload)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// `1` when the log ends in a torn or corrupt frame (the scan
    /// stops there; see [`crate::ScanOutcome::dropped_records`]).
    pub dropped_records: u64,
    /// Bytes of unverifiable log tail.
    pub dropped_bytes: u64,
    /// A checkpoint blob existed but failed verification and was
    /// ignored.  Recovery then only succeeds if the log still reaches
    /// back to the service's base epoch.
    pub checkpoint_dropped: bool,
}

fn recover_from_parts(checkpoint_blob: Option<&[u8]>, log: &[u8]) -> Recovered {
    let (checkpoint, checkpoint_dropped) = match checkpoint_blob {
        None => (None, false),
        Some(blob) => match decode_checkpoint_frame(blob) {
            Some(ckpt) => (Some(ckpt), false),
            None => (None, true),
        },
    };
    let scan = scan_log(log);
    Recovered {
        checkpoint,
        records: scan.records,
        dropped_records: scan.dropped_records,
        dropped_bytes: scan.dropped_bytes,
        checkpoint_dropped,
    }
}

/// Rebuild a log buffer retaining only records newer than `epoch`
/// (used by checkpoint truncation).  An unverifiable tail is dropped
/// here too: it was never recoverable, and carrying it across a
/// truncation could make it *look* like fresh corruption.
fn truncate_log_bytes(log: &[u8], epoch: u64) -> Vec<u8> {
    let mut out = Vec::new();
    for (rec_epoch, payload) in scan_log(log).records {
        if rec_epoch > epoch {
            out.extend_from_slice(&encode_log_frame(rec_epoch, &payload));
        }
    }
    out
}

/// Durable storage for an epoch-aligned ingest log plus checkpoint
/// snapshots.  Payloads are opaque; epochs are the only structure the
/// backend understands.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Append one log record and make it durable per the fsync policy.
    /// On error the record must be absent or a cleanly-droppable torn
    /// tail — never a half-record followed by later appends.
    fn append(&self, epoch: u64, payload: &[u8]) -> io::Result<()>;

    /// Atomically install a checkpoint covering everything up to and
    /// including `epoch`, then truncate the log to records after
    /// `epoch`.  A crash between the install and the truncation leaves
    /// stale records the replay layer skips by epoch.
    fn install_checkpoint(&self, epoch: u64, payload: &[u8]) -> io::Result<()>;

    /// Recover whatever the store holds.
    fn load(&self) -> io::Result<Recovered>;
}

/// Heap-backed store for tests: same framing, same recovery path as
/// the file backend, plus raw-byte hooks so corruption tests can flip
/// and truncate exactly the byte they mean to, and a [`FaultFile`]
/// on the log stream for deterministic crash injection.
#[derive(Debug, Default)]
pub struct MemBackend {
    log: Mutex<FaultFile<Vec<u8>>>,
    checkpoint: Mutex<Option<Vec<u8>>>,
}

impl MemBackend {
    /// An empty store with no fault armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store whose log stream dies at cumulative byte offset
    /// `kill_at`: the torn prefix persists, everything after fails.
    pub fn with_fault(kill_at: u64) -> Self {
        Self {
            log: Mutex::new(FaultFile::new(Vec::new(), Some(kill_at))),
            checkpoint: Mutex::new(None),
        }
    }

    /// Whether the armed fault has fired.
    pub fn fault_tripped(&self) -> bool {
        self.log.lock().expect("log lock poisoned").tripped()
    }

    /// Disarm the fault — the "process" restarting over the same
    /// surviving bytes writes normally again.
    pub fn clear_fault(&self) {
        self.log.lock().expect("log lock poisoned").clear_fault();
    }

    /// The raw log bytes as persisted (test hook).
    pub fn raw_log(&self) -> Vec<u8> {
        self.log
            .lock()
            .expect("log lock poisoned")
            .get_ref()
            .clone()
    }

    /// Replace the raw log bytes wholesale (test hook for synthesizing
    /// arbitrary corruption).
    pub fn set_raw_log(&self, bytes: Vec<u8>) {
        *self.log.lock().expect("log lock poisoned").get_mut() = bytes;
    }

    /// Flip one bit of the persisted log at `offset` (test hook).
    pub fn corrupt_log_byte(&self, offset: usize) {
        let mut log = self.log.lock().expect("log lock poisoned");
        log.get_mut()[offset] ^= 0x20;
    }

    /// Truncate the persisted log to `len` bytes (test hook).
    pub fn truncate_log(&self, len: usize) {
        self.log
            .lock()
            .expect("log lock poisoned")
            .get_mut()
            .truncate(len);
    }

    /// Bytes currently persisted in the log.
    pub fn log_len(&self) -> usize {
        self.log.lock().expect("log lock poisoned").get_ref().len()
    }

    /// The raw checkpoint blob, if one is installed (test hook).
    pub fn raw_checkpoint(&self) -> Option<Vec<u8>> {
        self.checkpoint
            .lock()
            .expect("checkpoint lock poisoned")
            .clone()
    }

    /// Flip one bit of the installed checkpoint at `offset` (test hook).
    pub fn corrupt_checkpoint_byte(&self, offset: usize) {
        let mut ckpt = self.checkpoint.lock().expect("checkpoint lock poisoned");
        ckpt.as_mut().expect("no checkpoint installed")[offset] ^= 0x20;
    }
}

impl StorageBackend for MemBackend {
    fn append(&self, epoch: u64, payload: &[u8]) -> io::Result<()> {
        let mut log = self.log.lock().expect("log lock poisoned");
        log.write_all(&encode_log_frame(epoch, payload))
    }

    fn install_checkpoint(&self, epoch: u64, payload: &[u8]) -> io::Result<()> {
        let mut log = self.log.lock().expect("log lock poisoned");
        if log.tripped() {
            return Err(io::Error::other("injected crash: backend is dead"));
        }
        *self.checkpoint.lock().expect("checkpoint lock poisoned") =
            Some(encode_checkpoint_frame(epoch, payload));
        let truncated = truncate_log_bytes(log.get_ref(), epoch);
        *log.get_mut() = truncated;
        Ok(())
    }

    fn load(&self) -> io::Result<Recovered> {
        let checkpoint = self.raw_checkpoint();
        let mut log = self.log.lock().expect("log lock poisoned");
        let recovered = recover_from_parts(checkpoint.as_deref(), log.get_ref());
        if recovered.dropped_bytes > 0 {
            // Heal the log: truncate to the verified prefix so later
            // appends extend trusted bytes, not the unverifiable tail
            // (which the next scan would stop at, dropping them).
            let verified = log.get_ref().len() - recovered.dropped_bytes as usize;
            log.get_mut().truncate(verified);
        }
        Ok(recovered)
    }
}

/// File-backed store: `wal.log` holds the framed record stream,
/// `checkpoint.snap` the newest checkpoint.  Checkpoint installation
/// is write-tmp → fsync → rename → fsync-dir; log truncation rewrites
/// the retained tail the same way.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    fsync: FsyncPolicy,
    log: Mutex<FaultFile<File>>,
}

impl FileBackend {
    /// Open (or create) the store under `dir`.
    pub fn open(dir: &Path, fsync: FsyncPolicy) -> io::Result<Self> {
        Self::open_inner(dir, fsync, None)
    }

    /// Open with a crash armed at cumulative log byte `kill_at` —
    /// the on-disk twin of [`MemBackend::with_fault`].
    pub fn open_with_fault(dir: &Path, fsync: FsyncPolicy, kill_at: u64) -> io::Result<Self> {
        Self::open_inner(dir, fsync, Some(kill_at))
    }

    fn open_inner(dir: &Path, fsync: FsyncPolicy, kill_at: Option<u64>) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let log = Self::open_log(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            fsync,
            log: Mutex::new(FaultFile::new(log, kill_at)),
        })
    }

    fn open_log(dir: &Path) -> io::Result<File> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("wal.log"))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Directory fsync makes the rename itself durable.  A
        // filesystem that genuinely cannot sync a directory handle
        // reports `Unsupported` — accept that; any other failure under
        // `FsyncPolicy::Always` would break the policy's power-loss
        // guarantee, so it propagates.
        match File::open(&self.dir).and_then(|d| d.sync_all()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
            Err(e) if self.fsync == FsyncPolicy::Always => Err(e),
            Err(_) => Ok(()),
        }
    }

    /// Write `bytes` to `final_name` atomically via a `.tmp` sibling.
    fn write_atomic(&self, final_name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{final_name}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(final_name))?;
        self.sync_dir()
    }
}

impl StorageBackend for FileBackend {
    fn append(&self, epoch: u64, payload: &[u8]) -> io::Result<()> {
        let mut log = self.log.lock().expect("log lock poisoned");
        log.write_all(&encode_log_frame(epoch, payload))?;
        log.flush()?;
        if self.fsync == FsyncPolicy::Always {
            log.get_ref().sync_data()?;
        }
        Ok(())
    }

    fn install_checkpoint(&self, epoch: u64, payload: &[u8]) -> io::Result<()> {
        let mut log = self.log.lock().expect("log lock poisoned");
        if log.tripped() {
            return Err(io::Error::other("injected crash: backend is dead"));
        }
        self.write_atomic("checkpoint.snap", &encode_checkpoint_frame(epoch, payload))?;
        // Truncate the log to records after the checkpoint.  A crash
        // before this rewrite lands just leaves stale records that
        // replay skips by epoch.  The new append handle is opened on
        // the tmp file *before* the rename — the inode travels with
        // the rename — so there is no window where the rename has
        // landed but the retained handle still points at the unlinked
        // old inode (appends would be acknowledged into an orphan and
        // lost on restart).  Any failure up to the rename leaves the
        // old log and handle fully intact.
        let current = std::fs::read(self.dir.join("wal.log")).unwrap_or_default();
        let retained = truncate_log_bytes(&current, epoch);
        let tmp = self.dir.join("wal.log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&retained)?;
            f.sync_all()?;
        }
        let new_handle = OpenOptions::new().append(true).open(&tmp)?;
        std::fs::rename(&tmp, self.dir.join("wal.log"))?;
        *log.get_mut() = new_handle;
        self.sync_dir()
    }

    fn load(&self) -> io::Result<Recovered> {
        let log_handle = self.log.lock().expect("log lock poisoned");
        let checkpoint = match File::open(self.dir.join("checkpoint.snap")) {
            Ok(mut f) => {
                let mut blob = Vec::new();
                f.read_to_end(&mut blob)?;
                Some(blob)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        let log = match std::fs::read(self.dir.join("wal.log")) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let recovered = recover_from_parts(checkpoint.as_deref(), &log);
        if recovered.dropped_bytes > 0 {
            // Heal the log: cut the unverifiable tail so later appends
            // (the handle is in append mode — writes land at the new
            // physical EOF) extend the verified prefix.  Without this,
            // acknowledged post-recovery records would sit behind the
            // bad frame and the next restart's scan would drop them.
            let verified = log.len() as u64 - recovered.dropped_bytes;
            log_handle.get_ref().set_len(verified)?;
            if self.fsync == FsyncPolicy::Always {
                log_handle.get_ref().sync_data()?;
            }
        }
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rq-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn backend_round_trip(backend: &dyn StorageBackend) {
        backend.append(1, b"one").unwrap();
        backend.append(2, b"two").unwrap();
        let out = backend.load().unwrap();
        assert!(out.checkpoint.is_none());
        assert_eq!(
            out.records,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
        assert_eq!(out.dropped_records, 0);

        backend.install_checkpoint(2, b"ckpt@2").unwrap();
        backend.append(3, b"three").unwrap();
        let out = backend.load().unwrap();
        assert_eq!(out.checkpoint, Some((2, b"ckpt@2".to_vec())));
        assert_eq!(out.records, vec![(3, b"three".to_vec())]);
        assert!(!out.checkpoint_dropped);
    }

    #[test]
    fn mem_backend_round_trips_records_and_checkpoints() {
        backend_round_trip(&MemBackend::new());
    }

    #[test]
    fn file_backend_round_trips_records_and_checkpoints() {
        let dir = temp_dir("roundtrip");
        backend_round_trip(&FileBackend::open(&dir, FsyncPolicy::Always).unwrap());
        // And the state survives a reopen (fresh handles, same files).
        let reopened = FileBackend::open(&dir, FsyncPolicy::Always).unwrap();
        let out = reopened.load().unwrap();
        assert_eq!(out.checkpoint, Some((2, b"ckpt@2".to_vec())));
        assert_eq!(out.records, vec![(3, b"three".to_vec())]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_fault_tearss_the_tail_and_recovery_drops_it() {
        // Learn the clean log size, then kill mid-way through record 2.
        let clean = MemBackend::new();
        clean.append(1, b"one").unwrap();
        let first = clean.log_len() as u64;
        clean.append(2, b"two").unwrap();

        let faulty = MemBackend::with_fault(first + 5);
        faulty.append(1, b"one").unwrap();
        assert!(faulty.append(2, b"two").is_err());
        assert!(faulty.fault_tripped());
        assert!(faulty.append(3, b"never").is_err(), "the store stays dead");
        let out = faulty.load().unwrap();
        assert_eq!(out.records, vec![(1, b"one".to_vec())]);
        assert_eq!(out.dropped_records, 1);
        assert_eq!(out.dropped_bytes, 5);
    }

    #[test]
    fn file_fault_tears_the_tail_on_disk_too() {
        let dir = temp_dir("fault");
        {
            let clean = MemBackend::new();
            clean.append(1, b"one").unwrap();
            let first = clean.log_len() as u64;
            let faulty = FileBackend::open_with_fault(&dir, FsyncPolicy::Never, first + 7).unwrap();
            faulty.append(1, b"one").unwrap();
            assert!(faulty.append(2, b"two").is_err());
        }
        // "Restart": a fresh backend over the surviving bytes.
        let recovered = FileBackend::open(&dir, FsyncPolicy::Always).unwrap();
        let out = recovered.load().unwrap();
        assert_eq!(out.records, vec![(1, b"one".to_vec())]);
        assert_eq!(out.dropped_records, 1);
        assert_eq!(out.dropped_bytes, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_load_heals_the_torn_tail_so_later_appends_survive_a_second_restart() {
        let backend = MemBackend::new();
        backend.append(1, b"one").unwrap();
        let boundary = backend.log_len();
        backend.append(2, b"two").unwrap();
        backend.truncate_log(boundary + 5); // torn record 2
        let out = backend.load().unwrap();
        assert_eq!(out.dropped_records, 1);
        assert_eq!(
            backend.log_len(),
            boundary,
            "load must cut the unverifiable tail"
        );
        // The "process" re-ingests epoch 2; a second recovery must see
        // it — before the heal, it sat behind the bad frame and the
        // scan dropped it.
        backend.append(2, b"two-again").unwrap();
        let again = backend.load().unwrap();
        assert_eq!(
            again.records,
            vec![(1, b"one".to_vec()), (2, b"two-again".to_vec())]
        );
        assert_eq!(again.dropped_records, 0);
    }

    #[test]
    fn file_load_heals_the_torn_tail_so_later_appends_survive_a_second_restart() {
        let dir = temp_dir("heal");
        {
            let clean = MemBackend::new();
            clean.append(1, b"one").unwrap();
            let first = clean.log_len() as u64;
            let faulty = FileBackend::open_with_fault(&dir, FsyncPolicy::Never, first + 7).unwrap();
            faulty.append(1, b"one").unwrap();
            assert!(faulty.append(2, b"two").is_err());
        }
        // First restart: recovery reports the torn tail, truncates it,
        // and the "process" ingests epoch 2 again.
        {
            let recovered = FileBackend::open(&dir, FsyncPolicy::Always).unwrap();
            let out = recovered.load().unwrap();
            assert_eq!(out.records, vec![(1, b"one".to_vec())]);
            assert_eq!(out.dropped_records, 1);
            recovered.append(2, b"two").unwrap();
        }
        // Second restart: the re-ingested epoch is intact.
        let reopened = FileBackend::open(&dir, FsyncPolicy::Always).unwrap();
        let out = reopened.load().unwrap();
        assert_eq!(
            out.records,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec())]
        );
        assert_eq!(out.dropped_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_reported_not_trusted() {
        let backend = MemBackend::new();
        backend.append(1, b"one").unwrap();
        backend.install_checkpoint(1, b"ckpt").unwrap();
        backend.corrupt_checkpoint_byte(crate::FRAME_HEADER_BYTES); // payload bit-flip
        let out = backend.load().unwrap();
        assert_eq!(out.checkpoint, None);
        assert!(out.checkpoint_dropped);
    }

    #[test]
    fn stale_records_survive_a_missed_truncation_and_are_returned() {
        // Simulate a crash after checkpoint install but before log
        // truncation: install, then put the full log back.
        let backend = MemBackend::new();
        backend.append(1, b"one").unwrap();
        backend.append(2, b"two").unwrap();
        let full_log = backend.raw_log();
        backend.install_checkpoint(2, b"ckpt@2").unwrap();
        backend.set_raw_log(full_log);
        let out = backend.load().unwrap();
        assert_eq!(out.checkpoint, Some((2, b"ckpt@2".to_vec())));
        // Both stale records come back; the replay layer skips them.
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn backends_are_object_safe_and_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemBackend>();
        assert_send_sync::<FileBackend>();
        let _boxed: Box<dyn StorageBackend> = Box::new(MemBackend::new());
    }
}
