//! Deterministic crash injection for the write path.
//!
//! A [`FaultFile`] wraps any [`std::io::Write`] and kills the stream
//! at a chosen cumulative byte offset: bytes before the offset are
//! written through, the byte at the offset and everything after it
//! never reach the inner writer, and every subsequent write (or flush)
//! fails like a dead process's file descriptor would.  Driving the
//! same workload with every possible kill offset reproduces every
//! torn-tail shape a real power cut can leave — deterministically,
//! in-process, without actually killing anything.

use std::io::{self, Write};

/// A write-through wrapper that injects a crash at a byte offset.
#[derive(Debug, Default)]
pub struct FaultFile<W> {
    inner: W,
    written: u64,
    kill_at: Option<u64>,
    tripped: bool,
}

impl<W> FaultFile<W> {
    /// Wrap `inner`; `kill_at = Some(n)` persists exactly the first
    /// `n` bytes written through this wrapper and fails everything
    /// after, `None` never injects.
    pub fn new(inner: W, kill_at: Option<u64>) -> Self {
        Self {
            inner,
            written: 0,
            kill_at,
            tripped: false,
        }
    }

    /// Total bytes actually written through to the inner writer.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether the injected crash has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// The wrapped writer, mutably.  Replacing it (e.g. swapping in a
    /// truncated log buffer) keeps the cumulative byte counter — the
    /// kill offset is defined over the *append stream*, not the file's
    /// current size.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Disarm the fault and reset the tripped state — a recovered
    /// "process" reopening the same backing store writes normally.
    pub fn clear_fault(&mut self) {
        self.kill_at = None;
        self.tripped = false;
    }

    fn crash(&mut self) -> io::Error {
        self.tripped = true;
        io::Error::other("injected crash: FaultFile kill offset reached")
    }
}

impl<W: Write> Write for FaultFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let Some(kill_at) = self.kill_at else {
            let n = self.inner.write(buf)?;
            self.written += n as u64;
            return Ok(n);
        };
        if self.tripped || self.written >= kill_at {
            return Err(self.crash());
        }
        let allowed = usize::try_from(kill_at - self.written)
            .unwrap_or(usize::MAX)
            .min(buf.len());
        let n = self.inner.write(&buf[..allowed])?;
        self.written += n as u64;
        if n < buf.len() {
            // The prefix landed; the rest of this write "was in flight
            // when the power went out".
            return Err(self.crash());
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.tripped {
            return Err(self.crash());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_a_fault_everything_passes_through() {
        let mut f = FaultFile::new(Vec::new(), None);
        f.write_all(b"hello world").unwrap();
        f.flush().unwrap();
        assert_eq!(f.written(), 11);
        assert!(!f.tripped());
        assert_eq!(f.into_inner(), b"hello world");
    }

    #[test]
    fn kill_offset_persists_exactly_the_prefix() {
        let mut f = FaultFile::new(Vec::new(), Some(7));
        assert!(f.write_all(b"hello world").is_err());
        assert!(f.tripped());
        assert_eq!(f.get_ref().as_slice(), b"hello w");
        // Everything after the crash fails too.
        assert!(f.write_all(b"more").is_err());
        assert!(f.flush().is_err());
        assert_eq!(f.get_ref().as_slice(), b"hello w");
    }

    #[test]
    fn kill_offset_spanning_multiple_writes_counts_cumulatively() {
        let mut f = FaultFile::new(Vec::new(), Some(5));
        f.write_all(b"abc").unwrap();
        assert!(f.write_all(b"defg").is_err());
        assert_eq!(f.get_ref().as_slice(), b"abcde");
    }

    #[test]
    fn kill_at_zero_persists_nothing() {
        let mut f = FaultFile::new(Vec::new(), Some(0));
        assert!(f.write_all(b"x").is_err());
        assert!(f.get_ref().is_empty());
    }

    #[test]
    fn clearing_the_fault_resumes_writes() {
        let mut f = FaultFile::new(Vec::new(), Some(2));
        assert!(f.write_all(b"abcd").is_err());
        f.clear_fault();
        f.write_all(b"ef").unwrap();
        assert_eq!(f.get_ref().as_slice(), b"abef");
        assert_eq!(f.written(), 4);
    }
}
