//! Durable storage for the query service: an append-only,
//! CRC-checksummed write-ahead log plus compact checkpoint snapshots,
//! behind one [`StorageBackend`] trait (Cozo-style pluggable storage:
//! an in-memory backend for tests, a file-backed one for production).
//!
//! This crate is deliberately policy-free: it frames, checksums,
//! persists and recovers **opaque byte payloads** keyed by epoch.  What
//! a payload means — a serialized ingest delta, a shard snapshot — is
//! the service layer's business (`rq-service`).  Keeping the crate
//! std-only (no workspace dependencies) lets every layer above it,
//! including `rq-wire` tests, pull it in without cycles.
//!
//! The durability contract:
//!
//! * [`StorageBackend::append`] is atomic-at-the-record level: after a
//!   crash, a record is either fully readable (its CRC verifies) or it
//!   is the torn tail and recovery drops it — never half-applied.
//! * [`StorageBackend::install_checkpoint`] is atomic wholesale
//!   (write-tmp → fsync → rename), and only then truncates the log up
//!   to the checkpoint epoch.  A crash between the two leaves stale
//!   log records *behind* the checkpoint, which recovery skips by
//!   epoch — duplication is safe, loss is not.
//! * [`StorageBackend::load`] stops at the **first** corrupt frame:
//!   everything after an unverifiable record is untrusted (counted,
//!   never replayed, never panicked over).
//!
//! Crash injection is first-class: [`FaultFile`] wraps any writer and
//! kills the stream at a chosen byte offset, so tests can simulate a
//! power cut at every byte of a workload's log and assert recovery
//! equals the never-crashed prefix.

mod backend;
mod bytes;
mod fault;
mod frame;

pub use backend::{FileBackend, FsyncPolicy, MemBackend, Recovered, StorageBackend};
pub use bytes::{ByteReader, ByteWriter, CodecError};
pub use fault::FaultFile;
pub use frame::{
    crc32, decode_checkpoint_frame, encode_checkpoint_frame, encode_log_frame, scan_log,
    ScanOutcome, FRAME_HEADER_BYTES,
};
