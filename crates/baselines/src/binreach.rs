//! The first, *simple* transformation of §4: reduce a linear program to
//! the transitive closure of a binary relation `bin` over whole
//! instantiated literals.
//!
//! For every rule `p(X̄) :- b1(Ȳ1), …, bn(Ȳn), q(Z̄)` the relation `bin`
//! contains `bin(q(z̄), p(x̄))` for every instantiation of the base
//! literals; non-recursive rules contribute `bin(∅, p(x̄))`.  A literal
//! `p(c̄)` is true iff `bin⁺(∅, p(c̄))` (the paper's Jagadish-et-al-style
//! reduction \[9, 15\]).
//!
//! The paper introduces this construction only to reject it: "the
//! traversal of the graph bin, starting from ∅, simulates the naive
//! bottom-up evaluation.  Hence it also shares with the bottom-up method
//! the problem that the evaluation of queries containing bound arguments
//! is inefficient" — the *whole* relation `bin` is computed before the
//! query bindings select anything.  We implement it faithfully as the
//! ablation baseline for the §4 binding-propagating transformation:
//! experiment E16 measures the facts consulted by each as the database
//! grows away from the query constant.
//!
//! The construction needs every variable of a rule (in particular the
//! arguments of the derived body literal) to be grounded by the base
//! literals, otherwise `bin` is infinite; [`bin_reach`] rejects programs
//! that violate this with [`BinReachError::NotGroundable`].  The paper
//! makes the same assumption implicitly (its `sg` example satisfies it;
//! plain transitive closure does not).

use rq_common::{Const, Counters, FxHashMap, FxHashSet, Pred};
use rq_datalog::{fire_rule, Atom, Database, Literal, Program, Query, Rule, Term, WholeDb};
use std::fmt;

/// Errors from [`bin_reach`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinReachError {
    /// Some rule has more than one derived body literal, so the program
    /// is not linear in the sense §4 requires.
    NotLinear {
        /// Index of the offending rule in `program.rules`.
        rule: usize,
    },
    /// Some rule has a variable (in the head or in the derived body
    /// literal) that no base body literal grounds, so the `bin`
    /// relation would be infinite.
    NotGroundable {
        /// Index of the offending rule in `program.rules`.
        rule: usize,
    },
    /// A built-in literal could not be evaluated (unsafe rule).
    UnsafeBuiltin,
}

impl fmt::Display for BinReachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinReachError::NotLinear { rule } => {
                write!(f, "rule #{rule} has more than one derived body literal")
            }
            BinReachError::NotGroundable { rule } => write!(
                f,
                "rule #{rule} has a variable no base literal grounds; \
                 the bin relation would be infinite"
            ),
            BinReachError::UnsafeBuiltin => write!(f, "unsafe built-in literal"),
        }
    }
}

impl std::error::Error for BinReachError {}

/// Outcome of the simple bin-transformation evaluation.
#[derive(Debug, Clone)]
pub struct BinReachOutcome {
    /// Answer rows over the query's free positions, sorted and deduped.
    pub answers: Vec<Vec<Const>>,
    /// Unit-cost instrumentation (bin construction + traversal +
    /// final selection).
    pub counters: Counters,
    /// Literal nodes of the `bin` graph (∅ excluded).
    pub bin_nodes: usize,
    /// Arcs of the `bin` graph.
    pub bin_edges: usize,
    /// Literal nodes reachable from ∅ (i.e. true literals).
    pub reachable: usize,
}

/// One instantiated literal, interned.
type NodeId = u32;

struct BinGraph {
    /// Node 0 is ∅.
    ids: FxHashMap<(Pred, Vec<Const>), NodeId>,
    literals: Vec<(Pred, Vec<Const>)>,
    succ: Vec<Vec<NodeId>>,
    edge_seen: FxHashSet<(NodeId, NodeId)>,
    edges: usize,
}

impl BinGraph {
    fn new() -> Self {
        Self {
            ids: FxHashMap::default(),
            // literals[0] is a dummy slot for ∅.
            literals: vec![(Pred(u32::MAX), Vec::new())],
            succ: vec![Vec::new()],
            edge_seen: FxHashSet::default(),
            edges: 0,
        }
    }

    fn intern(&mut self, pred: Pred, tuple: Vec<Const>, counters: &mut Counters) -> NodeId {
        match self.ids.entry((pred, tuple)) {
            std::collections::hash_map::Entry::Occupied(o) => *o.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                counters.nodes_inserted += 1;
                let id = self.literals.len() as NodeId;
                self.literals.push(v.key().clone());
                self.succ.push(Vec::new());
                v.insert(id);
                id
            }
        }
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if self.edge_seen.insert((from, to)) {
            self.succ[from as usize].push(to);
            self.edges += 1;
        }
    }
}

/// Split a rule body into its base atoms (plus built-ins) and its single
/// derived atom, if any.
fn split_rule<'r>(
    program: &Program,
    rule: &'r Rule,
    index: usize,
) -> Result<(Vec<Literal>, Option<&'r Atom>), BinReachError> {
    let mut derived: Option<&Atom> = None;
    let mut rest: Vec<Literal> = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Atom(a) if program.is_derived(a.pred) => {
                if derived.replace(a).is_some() {
                    return Err(BinReachError::NotLinear { rule: index });
                }
            }
            other => rest.push(other.clone()),
        }
    }
    Ok((rest, derived))
}

/// Evaluate `query` with the simple §4 bin transformation: materialize
/// the whole `bin` relation with bottom-up joins, traverse it from ∅,
/// and only then select the tuples matching the query bindings.
pub fn bin_reach(
    program: &Program,
    db: &Database,
    query: &Query,
) -> Result<BinReachOutcome, BinReachError> {
    let mut counters = Counters::new();
    let mut graph = BinGraph::new();

    for (index, rule) in program.rules.iter().enumerate() {
        let (base_body, derived) = split_rule(program, rule, index)?;

        // Every variable of the head and of the derived literal must be
        // grounded by the base literals.
        let mut grounded: FxHashSet<u32> = FxHashSet::default();
        for lit in &base_body {
            if let Literal::Atom(a) = lit {
                grounded.extend(a.vars().map(|v| v.0));
            }
        }
        let mut need: Vec<Term> = rule.head.args.clone();
        if let Some(d) = derived {
            need.extend(d.args.iter().copied());
        }
        if need
            .iter()
            .any(|t| t.as_var().is_some_and(|v| !grounded.contains(&v.0)))
        {
            return Err(BinReachError::NotGroundable { rule: index });
        }

        // Synthesize `pack(Z̄, X̄) :- base body` and fire it; each head
        // tuple splits into the bin edge source and target.
        let n_derived_args = derived.map_or(0, |d| d.args.len());
        let mut packed_args: Vec<Term> = Vec::new();
        if let Some(d) = derived {
            packed_args.extend(d.args.iter().copied());
        }
        packed_args.extend(rule.head.args.iter().copied());
        let packed = Rule {
            head: Atom::new(rule.head.pred, packed_args),
            body: base_body,
            var_names: rule.var_names.clone(),
        };
        let head_pred = rule.head.pred;
        let derived_pred = derived.map(|d| d.pred);
        let mut raw_edges: Vec<(Vec<Const>, Vec<Const>)> = Vec::new();
        fire_rule(
            program,
            &packed,
            &WholeDb(db),
            &mut counters,
            &mut |tuple| {
                let (src_tuple, dst_tuple) = tuple.split_at(n_derived_args);
                raw_edges.push((src_tuple.to_vec(), dst_tuple.to_vec()));
            },
        )
        .map_err(|_| BinReachError::UnsafeBuiltin)?;
        for (src_tuple, dst_tuple) in raw_edges {
            let src = match derived_pred {
                Some(q) => graph.intern(q, src_tuple, &mut counters),
                None => 0,
            };
            let dst = graph.intern(head_pred, dst_tuple, &mut counters);
            graph.add_edge(src, dst);
        }
    }

    // Traverse bin from ∅; reachable literal nodes are the true facts.
    let mut reachable: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack: Vec<NodeId> = vec![0];
    while let Some(n) = stack.pop() {
        if !reachable.insert(n) {
            continue;
        }
        for &m in &graph.succ[n as usize] {
            counters.rule_firings += 1;
            stack.push(m);
        }
    }

    // Only now apply the query bindings (the inefficiency the paper
    // calls out).
    let full: Vec<Vec<Const>> = reachable
        .iter()
        .filter(|&&n| n != 0 && graph.literals[n as usize].0 == query.pred)
        .map(|&n| graph.literals[n as usize].1.clone())
        .collect();
    let mut answers = query.answer_from_relation(&full);
    answers.sort();
    answers.dedup();

    Ok(BinReachOutcome {
        answers,
        counters,
        bin_nodes: graph.literals.len() - 1,
        bin_edges: graph.edges,
        reachable: reachable.len().saturating_sub(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::{parse_program, seminaive_eval};

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n";

    fn sg_program() -> Program {
        parse_program(&format!(
            "{SG}\
             up(a,a1). up(a1,a2). up(c,a1).\n\
             flat(a2,b2). flat(a1,b1). flat(a,z).\n\
             down(b2,b1x). down(b1x,b0). down(b1,b0)."
        ))
        .unwrap()
    }

    fn answers_for(program: &mut Program, qtext: &str) -> (Vec<Vec<Const>>, BinReachOutcome) {
        let db = Database::from_program(program);
        let query = Query::parse(program, qtext).unwrap();
        let oracle = seminaive_eval(program).unwrap();
        let full = oracle.tuples(query.pred);
        let mut expected = query.answer_from_relation(&full);
        expected.sort();
        expected.dedup();
        let out = bin_reach(program, &db, &query).unwrap();
        (expected, out)
    }

    #[test]
    fn sg_matches_oracle_on_all_query_forms() {
        let mut program = sg_program();
        for q in [
            "sg(a, Y)",
            "sg(X, b0)",
            "sg(a, z)",
            "sg(X, Y)",
            "sg(nobody, Y)",
        ] {
            let (expected, out) = answers_for(&mut program, q);
            assert_eq!(out.answers, expected, "query {q}");
        }
    }

    #[test]
    fn bin_graph_shape_on_paper_example() {
        // The paper: bin(sg(X1,Y1), sg(X,Y)) :- up(X,X1), down(Y1,Y);
        // bin(∅, sg(X,Y)) :- flat(X,Y).  Every flat fact is an edge from
        // ∅; every up×down combination is an internal edge.
        let mut program =
            parse_program(&format!("{SG}up(a,b). flat(b,c). down(c,d). flat(x,y).")).unwrap();
        let db = Database::from_program(&program);
        let query = Query::parse(&mut program, "sg(a, Y)").unwrap();
        let out = bin_reach(&program, &db, &query).unwrap();
        // Nodes: sg(b,c), sg(x,y) from flat; sg(a,d) from the recursive
        // rule (source sg(b,c)).
        assert_eq!(out.bin_nodes, 3);
        // Edges: ∅→sg(b,c), ∅→sg(x,y), sg(b,c)→sg(a,d).
        assert_eq!(out.bin_edges, 3);
        assert_eq!(out.reachable, 3);
        assert_eq!(out.answers.len(), 1); // sg(a,d)
    }

    #[test]
    fn rejects_plain_transitive_closure() {
        // In `tc(X,Z) :- e(X,Y), tc(Y,Z)` the head variable Z is only
        // grounded by the derived literal, so bin would be infinite.
        let program = parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b).",
        )
        .unwrap();
        let mut p2 = program.clone();
        let db = Database::from_program(&program);
        let query = Query::parse(&mut p2, "tc(a, Y)").unwrap();
        assert_eq!(
            bin_reach(&program, &db, &query).unwrap_err(),
            BinReachError::NotGroundable { rule: 1 }
        );
    }

    #[test]
    fn rejects_flight_program() {
        // D and AT are grounded only through the recursive literal: the
        // §4 *binding-propagating* transformation handles this program,
        // the simple one cannot.
        let program = parse_program(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). is_deptime(540).",
        )
        .unwrap();
        let mut p2 = program.clone();
        let db = Database::from_program(&program);
        let query = Query::parse(&mut p2, "cnx(hel, 540, D, AT)").unwrap();
        assert_eq!(
            bin_reach(&program, &db, &query).unwrap_err(),
            BinReachError::NotGroundable { rule: 1 }
        );
    }

    #[test]
    fn rejects_nonlinear_rules() {
        let program = parse_program(
            "p(X,Y) :- e(X,Y).\n\
             p(X,Z) :- p(X,Y), p(Y,Z).\n\
             e(a,b).",
        )
        .unwrap();
        let mut p2 = program.clone();
        let db = Database::from_program(&program);
        let query = Query::parse(&mut p2, "p(a, Y)").unwrap();
        assert_eq!(
            bin_reach(&program, &db, &query).unwrap_err(),
            BinReachError::NotLinear { rule: 1 }
        );
    }

    #[test]
    fn computes_whole_bin_regardless_of_binding() {
        // An irrelevant same-generation component far from the query
        // constant still gets joined into bin — the paper's criticism.
        let mut facts = String::from("up(a,a1). flat(a1,b1). down(b1,b).\n");
        for i in 0..50 {
            facts.push_str(&format!(
                "up(u{i},v{i}). flat(v{i},w{i}). down(w{i},x{i}).\n"
            ));
        }
        let mut program = parse_program(&format!("{SG}{facts}")).unwrap();
        let db = Database::from_program(&program);
        let query = Query::parse(&mut program, "sg(a, Y)").unwrap();
        let out = bin_reach(&program, &db, &query).unwrap();
        // Every flat fact becomes a bin node even though only one is
        // relevant to sg(a, Y).
        assert!(out.bin_nodes >= 51, "bin_nodes = {}", out.bin_nodes);
        assert_eq!(out.answers.len(), 1);

        // The §3/§4 pipeline consults only the reachable neighborhood.
        let solution = recursive_queries_probe(&mut program, "sg(a, Y)");
        assert!(
            solution < out.counters.total_work() / 4,
            "engine work {solution} vs binreach {}",
            out.counters.total_work()
        );
    }

    /// Engine total work for a query (helper kept free of dev-dependency
    /// cycles: rq-engine is a normal dependency of this crate).
    fn recursive_queries_probe(program: &mut Program, qtext: &str) -> u64 {
        use rq_engine::{EdbSource, EvalOptions, Evaluator};
        use rq_relalg::{lemma1, Lemma1Options};
        let db = Database::from_program(program);
        let query = Query::parse(program, qtext).unwrap();
        let system = lemma1(program, &Lemma1Options::default()).unwrap().system;
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&system, &source);
        let rq_datalog::QueryArg::Bound(a) = query.args[0] else {
            panic!("probe expects a bound first argument")
        };
        ev.evaluate(query.pred, a, &EvalOptions::default())
            .counters
            .total_work()
    }

    #[test]
    fn empty_database_yields_empty_answers() {
        let mut program = parse_program(SG).unwrap();
        let db = Database::from_program(&program);
        let query = Query::parse(&mut program, "sg(a, Y)").unwrap();
        let out = bin_reach(&program, &db, &query).unwrap();
        assert!(out.answers.is_empty());
        assert_eq!(out.bin_nodes, 0);
        assert_eq!(out.bin_edges, 0);
    }
}
