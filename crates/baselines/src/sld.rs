//! Prolog-style SLD resolution: top-down, depth-first, tuple-at-a-time,
//! **without memoization**.
//!
//! This is the paper's exemplar of strategies that "duplicate data"
//! (factor (1) of the Bancilhon–Ramakrishnan analysis): the same
//! subgoal is re-proved every time it is reached, so on a DAG with
//! sharing the number of rule firings can be exponential in the depth
//! while the traversal engine stays linear.  Left-recursive or cyclic
//! programs diverge, as in Prolog; a step budget makes runs total.

use rq_common::{Const, Counters, FxHashSet};
use rq_datalog::{mask_of, Database, Literal, Program, Query, Term};

/// Result of an SLD evaluation.
#[derive(Clone, Debug)]
pub struct SldOutcome {
    /// Answer rows over the query's free positions, sorted.
    pub rows: Vec<Vec<Const>>,
    /// Instrumentation (`rule_firings` counts goal reductions — the
    /// duplication measure).
    pub counters: Counters,
    /// Whether the search space was exhausted within the step budget.
    pub complete: bool,
}

/// A goal: a predicate with each argument bound or free (free slots get
/// filled by unification as the proof proceeds).
type Goal = (rq_common::Pred, Vec<Option<Const>>);

/// Evaluate `query` by SLD resolution with at most `max_steps` goal
/// reductions.
pub fn sld(program: &Program, query: &Query, max_steps: u64) -> SldOutcome {
    let db = Database::from_program(program);
    let mut counters = Counters::new();
    let goal: Goal = (
        query.pred,
        query
            .args
            .iter()
            .map(|a| match a {
                rq_datalog::QueryArg::Bound(c) => Some(*c),
                rq_datalog::QueryArg::Free => None,
            })
            .collect(),
    );
    let mut answers: FxHashSet<Vec<Const>> = FxHashSet::default();
    let mut steps = 0u64;
    let complete = prove(
        program,
        &db,
        &goal,
        &mut counters,
        &mut steps,
        max_steps,
        0,
        &mut |tuple| {
            answers.insert(query.free_positions().iter().map(|&i| tuple[i]).collect());
        },
    );
    let mut rows: Vec<Vec<Const>> = answers.into_iter().collect();
    rows.sort();
    SldOutcome {
        rows,
        counters,
        complete,
    }
}

/// Depth guard: even acyclic data can generate deep proofs; SLD in
/// Prolog would blow the stack — we cap well below Rust's stack limit.
const MAX_DEPTH: usize = 300;

/// Prove `goal`, calling `emit` with every fully instantiated tuple.
/// Returns false if the step budget or depth limit was hit.
#[allow(clippy::too_many_arguments)]
fn prove(
    program: &Program,
    db: &Database,
    goal: &Goal,
    counters: &mut Counters,
    steps: &mut u64,
    max_steps: u64,
    depth: usize,
    emit: &mut dyn FnMut(&[Const]),
) -> bool {
    if *steps >= max_steps || depth >= MAX_DEPTH {
        return false;
    }
    *steps += 1;
    let (pred, pattern) = goal;
    let mut complete = true;

    // Facts: index lookup on the bound positions.
    if !program.is_derived(*pred) {
        let rel = db.relation(*pred);
        let mut key: Vec<Const> = Vec::new();
        let mask = mask_of(pattern.iter().enumerate().filter_map(|(i, b)| {
            b.map(|c| {
                key.push(c);
                i
            })
        }));
        let mut ords = Vec::new();
        counters.index_probes += 1;
        rel.lookup(mask, &key, &mut ords);
        for o in ords {
            counters.tuples_retrieved += 1;
            emit(rel.tuple(o));
        }
        return true;
    }

    // Rules: try each, depth-first.
    for rule in program.rules_for(*pred) {
        counters.rule_firings += 1;
        // Unify the head with the goal pattern.
        let mut env: Vec<Option<Const>> = vec![None; rule.num_vars()];
        let mut ok = true;
        for (i, t) in rule.head.args.iter().enumerate() {
            match (t, pattern[i]) {
                (Term::Var(v), Some(c)) => match env[v.0 as usize] {
                    Some(prev) if prev != c => {
                        ok = false;
                        break;
                    }
                    _ => env[v.0 as usize] = Some(c),
                },
                (Term::Const(k), Some(c)) if *k != c => {
                    ok = false;
                    break;
                }
                _ => {}
            }
        }
        if !ok {
            continue;
        }
        complete &= solve_body(
            program, db, rule, 0, &mut env, counters, steps, max_steps, depth, emit,
        );
    }
    complete
}

#[allow(clippy::too_many_arguments)]
fn solve_body(
    program: &Program,
    db: &Database,
    rule: &rq_datalog::Rule,
    idx: usize,
    env: &mut Vec<Option<Const>>,
    counters: &mut Counters,
    steps: &mut u64,
    max_steps: u64,
    depth: usize,
    emit: &mut dyn FnMut(&[Const]),
) -> bool {
    if *steps >= max_steps {
        return false;
    }
    if idx == rule.body.len() {
        let tuple: Vec<Const> = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => env[v.0 as usize].expect("safe rule"),
            })
            .collect();
        emit(&tuple);
        return true;
    }
    match &rule.body[idx] {
        Literal::Cmp { op, lhs, rhs } => {
            let resolve = |t: &Term| match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => env[v.0 as usize],
            };
            match (resolve(lhs), resolve(rhs)) {
                (Some(a), Some(b)) => {
                    let ord = program.consts.value(a).builtin_cmp(program.consts.value(b));
                    if op.eval(ord) {
                        solve_body(
                            program,
                            db,
                            rule,
                            idx + 1,
                            env,
                            counters,
                            steps,
                            max_steps,
                            depth,
                            emit,
                        )
                    } else {
                        true
                    }
                }
                // Prolog would raise an instantiation error; the paper's
                // safety condition prevents this for our programs, but a
                // left-placed comparison simply floats right.
                _ => solve_body(
                    program,
                    db,
                    rule,
                    idx + 1,
                    env,
                    counters,
                    steps,
                    max_steps,
                    depth,
                    emit,
                ),
            }
        }
        Literal::Atom(atom) => {
            let pattern: Vec<Option<Const>> = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(*c),
                    Term::Var(v) => env[v.0 as usize],
                })
                .collect();
            let subgoal: Goal = (atom.pred, pattern);
            let mut complete = true;
            // Collect sub-answers, then continue the body for each
            // (tuple-at-a-time, no memo: the recursion below re-proves
            // subgoals freely).
            let mut sub_answers: Vec<Vec<Const>> = Vec::new();
            complete &= prove(
                program,
                db,
                &subgoal,
                counters,
                steps,
                max_steps,
                depth + 1,
                &mut |t| sub_answers.push(t.to_vec()),
            );
            for t in sub_answers {
                let mut bound_here: Vec<u32> = Vec::new();
                let mut ok = true;
                for (i, term) in atom.args.iter().enumerate() {
                    if let Term::Var(v) = term {
                        match env[v.0 as usize] {
                            Some(prev) => {
                                if prev != t[i] {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                env[v.0 as usize] = Some(t[i]);
                                bound_here.push(v.0);
                            }
                        }
                    }
                }
                if ok {
                    complete &= solve_body(
                        program,
                        db,
                        rule,
                        idx + 1,
                        env,
                        counters,
                        steps,
                        max_steps,
                        depth,
                        emit,
                    );
                }
                for v in bound_here {
                    env[v as usize] = None;
                }
            }
            complete
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_adorn::oracle_rows;
    use rq_datalog::parse_program;

    fn check(src: &str, query: &str) {
        let mut program = parse_program(src).unwrap();
        let q = Query::parse(&mut program, query).unwrap();
        let out = sld(&program, &q, 1_000_000);
        assert!(out.complete);
        let oracle = oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle, "query {query}");
    }

    #[test]
    fn sld_transitive_closure_acyclic() {
        check(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d).",
            "tc(a, Y)",
        );
    }

    #[test]
    fn sld_same_generation() {
        check(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg(a, Y)",
        );
    }

    #[test]
    fn sld_cycle_hits_budget() {
        let mut program = parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,a).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "tc(a, Y)").unwrap();
        let out = sld(&program, &q, 10_000);
        // Diverges — the budget cuts it off, but the answers found up to
        // that point are sound.
        assert!(!out.complete);
        let oracle: FxHashSet<Vec<Const>> = oracle_rows(&program, &q).into_iter().collect();
        assert!(out.rows.iter().all(|r| oracle.contains(r)));
    }

    #[test]
    fn sld_duplicates_work_on_shared_dags() {
        // A ladder of diamonds: 2^k proof paths through k diamonds.  SLD
        // re-proves each shared node per path; the engine visits each
        // node once.
        let k = 11;
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..k {
            src.push_str(&format!(
                "e(n{i}, l{i}). e(n{i}, r{i}). e(l{i}, n{n}). e(r{i}, n{n}).\n",
                n = i + 1
            ));
        }
        let mut program = parse_program(&src).unwrap();
        let q = Query::parse(&mut program, "tc(n0, Y)").unwrap();
        let out = sld(&program, &q, 10_000_000);
        assert!(out.complete);
        assert_eq!(out.rows.len(), 3 * k);
        // Exponential duplication: the diamond fan-out doubles the goal
        // count per level.
        assert!(
            out.counters.rule_firings > 1 << k,
            "expected exponential firings, got {}",
            out.counters.rule_firings
        );

        // The engine answers the same query with linear work.
        let db = Database::from_program(&program);
        let system = rq_relalg::lemma1(&program, &rq_relalg::Lemma1Options::default())
            .unwrap()
            .system;
        let tc = program.pred_by_name("tc").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("n0".into()))
            .unwrap();
        let source = rq_engine::EdbSource::new(&db);
        let engine = rq_engine::Evaluator::new(&system, &source).evaluate(
            tc,
            a,
            &rq_engine::EvalOptions::default(),
        );
        assert_eq!(engine.answers.len(), out.rows.len());
        assert!(
            engine.counters.total_work() * 5 < out.counters.rule_firings,
            "engine {} should be far below SLD {}",
            engine.counters.total_work(),
            out.counters.rule_firings
        );
    }
}
