//! The Hunt–Szymanski–Ullman evaluator \[8\]: preconstruct the *entire*
//! graph of a derived-free binary-relational expression, then answer
//! queries by plain reachability.
//!
//! This is the algorithm the paper's §3 starts from and improves: "the
//! algorithm is impractical, because it involves the preconstruction of
//! the entire graph G(p).  By definition, this graph contains copies of
//! all tuples from every argument relation in the expression" — including
//! portions unreachable from any query constant.  Experiment E14
//! measures exactly that gap against the demand-driven engine.

use rq_automata::{thompson, Label, Nfa};
use rq_common::{Const, Counters, FxHashMap, FxHashSet, Pred};
use rq_datalog::Database;
use rq_relalg::Expr;

/// The preconstructed graph for one expression.
pub struct HuntGraph {
    nfa: Nfa,
    /// Adjacency: node → successors, over (state, const) nodes interned
    /// to dense ids.
    succ: Vec<Vec<u32>>,
    node_id: FxHashMap<(u32, Const), u32>,
    nodes: Vec<(u32, Const)>,
    /// Construction cost.
    pub build_counters: Counters,
}

impl HuntGraph {
    /// Preconstruct the graph of `e` over the whole database.  Every
    /// tuple of every occurrence of every argument relation becomes an
    /// arc; `id` transitions add an arc per active-domain constant.
    pub fn build(db: &Database, e: &Expr) -> Self {
        assert!(
            !matches!(e, Expr::Empty),
            "empty expression has an empty graph"
        );
        let nfa = thompson(e);
        let mut counters = Counters::new();
        let mut node_id: FxHashMap<(u32, Const), u32> = FxHashMap::default();
        let mut nodes: Vec<(u32, Const)> = Vec::new();
        let mut succ: Vec<Vec<u32>> = Vec::new();
        let intern = |n: (u32, Const),
                      nodes: &mut Vec<(u32, Const)>,
                      succ: &mut Vec<Vec<u32>>,
                      node_id: &mut FxHashMap<(u32, Const), u32>,
                      counters: &mut Counters| {
            *node_id.entry(n).or_insert_with(|| {
                counters.nodes_inserted += 1;
                nodes.push(n);
                succ.push(Vec::new());
                nodes.len() as u32 - 1
            })
        };
        // Active domain for id transitions.
        let mut domain: FxHashSet<Const> = FxHashSet::default();
        for pi in 0..db.num_preds() {
            for t in db.relation(Pred::from_index(pi)).iter() {
                domain.extend(t.iter().copied());
            }
        }
        for (q, row) in nfa.trans.iter().enumerate() {
            for &(label, to) in row {
                match label {
                    Label::Id => {
                        for &c in &domain {
                            let a = intern(
                                (q as u32, c),
                                &mut nodes,
                                &mut succ,
                                &mut node_id,
                                &mut counters,
                            );
                            let b = intern(
                                (to as u32, c),
                                &mut nodes,
                                &mut succ,
                                &mut node_id,
                                &mut counters,
                            );
                            succ[a as usize].push(b);
                            counters.rule_firings += 1;
                        }
                    }
                    Label::Sym(r) => {
                        for t in db.relation(r).iter() {
                            counters.tuples_retrieved += 1;
                            let a = intern(
                                (q as u32, t[0]),
                                &mut nodes,
                                &mut succ,
                                &mut node_id,
                                &mut counters,
                            );
                            let b = intern(
                                (to as u32, t[1]),
                                &mut nodes,
                                &mut succ,
                                &mut node_id,
                                &mut counters,
                            );
                            succ[a as usize].push(b);
                            counters.rule_firings += 1;
                        }
                    }
                    Label::Inv(r) => {
                        for t in db.relation(r).iter() {
                            counters.tuples_retrieved += 1;
                            let a = intern(
                                (q as u32, t[1]),
                                &mut nodes,
                                &mut succ,
                                &mut node_id,
                                &mut counters,
                            );
                            let b = intern(
                                (to as u32, t[0]),
                                &mut nodes,
                                &mut succ,
                                &mut node_id,
                                &mut counters,
                            );
                            succ[a as usize].push(b);
                            counters.rule_firings += 1;
                        }
                    }
                }
            }
        }
        Self {
            nfa,
            succ,
            node_id,
            nodes,
            build_counters: counters,
        }
    }

    /// Number of nodes in the preconstructed graph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.succ.iter().map(Vec::len).sum()
    }

    /// Answer `p(a, Y)`: constants at final-state nodes reachable from
    /// `(q_s, a)`.  Charges per-query traversal costs to `counters`.
    pub fn query(&self, a: Const, counters: &mut Counters) -> FxHashSet<Const> {
        let mut answers = FxHashSet::default();
        let Some(&start) = self.node_id.get(&(self.nfa.start as u32, a)) else {
            return answers;
        };
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            counters.nodes_inserted += 1;
            let (state, c) = self.nodes[id as usize];
            if state as usize == self.nfa.finish {
                answers.insert(c);
            }
            for &to in &self.succ[id as usize] {
                counters.rule_firings += 1;
                stack.push(to);
            }
        }
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::parse_program;
    use rq_engine::{EdbSource, EvalOptions, Evaluator};
    use rq_relalg::{lemma1, Lemma1Options};

    #[test]
    fn hunt_matches_engine_on_closure() {
        let src = "tc(X,Y) :- e(X,Y).\n\
                   tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                   e(a,b). e(b,c). e(c,d). e(x,y). e(y,z).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let graph = HuntGraph::build(&db, &sys.rhs[&tc]);
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let mut counters = Counters::new();
        let hunt_answers = graph.query(a, &mut counters);
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let engine = ev.evaluate(tc, a, &EvalOptions::default());
        assert_eq!(hunt_answers, engine.answers);
    }

    #[test]
    fn hunt_preconstruction_touches_everything() {
        // A big irrelevant component inflates the preconstructed graph
        // but not the demand-driven traversal.
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).\n");
        for i in 0..100 {
            src.push_str(&format!("e(u{}, u{}).\n", i, i + 1));
        }
        let program = parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let graph = HuntGraph::build(&db, &sys.rhs[&tc]);
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();

        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let engine = ev.evaluate(tc, a, &EvalOptions::default());
        // Hunt pays for all 101 edges twice (two occurrences of e in
        // e*·e); the engine touches only a's neighborhood.
        assert!(graph.build_counters.tuples_retrieved >= 202);
        assert!(engine.counters.tuples_retrieved <= 4);
        // Same answers regardless.
        let mut counters = Counters::new();
        assert_eq!(graph.query(a, &mut counters), engine.answers);
    }

    #[test]
    fn hunt_query_for_unknown_constant_is_empty() {
        let program = parse_program("e(a,b).").unwrap();
        let db = Database::from_program(&program);
        let e = program.pred_by_name("e").unwrap();
        let graph = HuntGraph::build(&db, &Expr::star(Expr::Sym(e)));
        let mut counters = Counters::new();
        // b has no outgoing e edge, but (state, b) nodes exist; query an
        // entirely absent constant.
        let ghost = Const(9999);
        assert!(graph.query(ghost, &mut counters).is_empty());
    }
}
