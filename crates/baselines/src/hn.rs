//! The Henschen–Naqvi evaluation method \[7\], specialized (as in the
//! paper's comparison) to queries `p(a, Y)` over equations
//! `p = e0 ∪ e1·p·e2`.
//!
//! Henschen–Naqvi is an *iterative node-set* method: it computes
//! `answer = ⋃_k e2^k(e0(e1^k(a)))` by ascending through `e1` images and,
//! at each level `k`, walking the `e2` side `k` steps down **from
//! scratch**.  Unlike the paper's graph-traversal algorithm it does not
//! remember already-traversed paths, which is exactly the difference
//! sample (c) of Figure 7 exposes (O(n²) vs O(n)).

use crate::image::image;
use rq_common::{Const, Counters, FxHashSet};
use rq_datalog::Database;
use rq_relalg::{linear_decomposition, EqSystem};

/// Result of a Henschen–Naqvi evaluation.
#[derive(Clone, Debug)]
pub struct HnOutcome {
    /// The answer set.
    pub answers: FxHashSet<Const>,
    /// Instrumentation.
    pub counters: Counters,
    /// Whether the ascent exhausted naturally (`true`) or the level
    /// bound was hit.
    pub converged: bool,
}

/// Evaluate `p(a, Y)` with the Henschen–Naqvi strategy.  `max_levels`
/// bounds the ascent for cyclic `e1` (pass the m·n bound of §3).
pub fn henschen_naqvi(
    system: &EqSystem,
    db: &Database,
    p: rq_common::Pred,
    a: Const,
    max_levels: Option<u64>,
) -> HnOutcome {
    let (e0, e1, e2) = linear_decomposition(p, &system.rhs[&p])
        .expect("Henschen-Naqvi requires the linear shape p = e0 ∪ e1·p·e2");
    let mut counters = Counters::new();
    let mut answers: FxHashSet<Const> = FxHashSet::default();
    let mut level_set: FxHashSet<Const> = [a].into_iter().collect();
    let mut k: u64 = 0;
    let mut converged = true;
    // Ascend until the level set is empty.  Without memoization a cyclic
    // e1 never empties; the caller's bound decides.
    loop {
        counters.iterations += 1;
        // F_k = e0(A_k), then walk k steps of e2 from scratch.
        let mut t = image(db, &e0, &level_set, &mut counters);
        for _ in 0..k {
            if t.is_empty() {
                break;
            }
            t = image(db, &e2, &t, &mut counters);
        }
        for v in t {
            if answers.insert(v) {
                counters.nodes_inserted += 1;
            }
        }
        // A_{k+1} = e1(A_k).
        level_set = image(db, &e1, &level_set, &mut counters);
        if level_set.is_empty() {
            break;
        }
        k += 1;
        if let Some(limit) = max_levels {
            if k >= limit {
                converged = false;
                break;
            }
        }
    }
    HnOutcome {
        answers,
        counters,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::parse_program;
    use rq_relalg::{lemma1, Lemma1Options};

    fn setup(src: &str) -> (rq_datalog::Program, Database, EqSystem) {
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        (program, db, sys)
    }

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n";

    #[test]
    fn hn_matches_naive_on_sg() {
        let (program, db, sys) = setup(&format!(
            "{SG} up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z). down(b2,b1). down(b1,b)."
        ));
        let sg = program.pred_by_name("sg").unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let out = henschen_naqvi(&sys, &db, sg, a, None);
        let naive = rq_datalog::naive_eval(&program).unwrap();
        let expected: FxHashSet<Const> = naive
            .tuples(sg)
            .into_iter()
            .filter(|t| t[0] == a)
            .map(|t| t[1])
            .collect();
        assert_eq!(out.answers, expected);
        assert!(out.converged);
    }

    #[test]
    fn hn_cyclic_respects_bound() {
        let (program, db, sys) = setup(&format!(
            "{SG} up(a1,a2). up(a2,a1). flat(a1,b1). down(b1,b2). down(b2,b3). down(b3,b1)."
        ));
        let sg = program.pred_by_name("sg").unwrap();
        let a1 = program.consts.get(&ConstValue::Str("a1".into())).unwrap();
        let out = henschen_naqvi(&sys, &db, sg, a1, Some(7));
        assert!(!out.converged);
        let mut names: Vec<String> = out
            .answers
            .iter()
            .map(|&c| program.consts.display(c))
            .collect();
        names.sort();
        assert_eq!(names, vec!["b1", "b2", "b3"]);
    }

    #[test]
    fn hn_redoes_down_walks() {
        // Figure 7(c)-like: up chain, flat rungs, descending down chain.
        // HN's per-level down walk is Θ(k), so total tuple retrievals are
        // quadratic in n.
        let n = 30;
        let mut src = String::from(SG);
        for i in 0..n - 1 {
            src.push_str(&format!("up(a{}, a{}).\n", i, i + 1));
        }
        for i in 0..n {
            src.push_str(&format!("flat(a{i}, b{i}).\n"));
        }
        for i in (1..n).rev() {
            src.push_str(&format!("down(b{}, b{}).\n", i, i - 1));
        }
        let (program, db, sys) = setup(&src);
        let sg = program.pred_by_name("sg").unwrap();
        let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
        let out = henschen_naqvi(&sys, &db, sg, a0, None);
        // Quadratic: at least n²/4 retrievals.
        assert!(
            out.counters.tuples_retrieved as usize > n * n / 4,
            "HN should be quadratic here, got {}",
            out.counters.tuples_retrieved
        );
        // And still correct.
        assert_eq!(out.answers.len(), 1); // {b0}
    }
}
