//! Instrumented image computation over derived-free expressions.
//!
//! Every strategy in this crate is an "image of a node set under a
//! relational expression" method (the paper's phrase for Henschen–Naqvi
//! and, by extension, counting).  This helper charges the shared
//! [`Counters`] for every tuple retrieved, so strategy costs are
//! comparable with the traversal engine's.

use rq_common::{Const, Counters, FxHashSet};
use rq_datalog::Database;
use rq_engine::{EdbSource, TupleSource};
use rq_relalg::Expr;

/// The image of `set` under a derived-free expression, charging
/// `counters` for the tuples retrieved.
pub fn image(
    db: &Database,
    e: &Expr,
    set: &FxHashSet<Const>,
    counters: &mut Counters,
) -> FxHashSet<Const> {
    let src = EdbSource::new(db);
    image_src(&src, e, set, counters)
}

fn image_src(
    src: &EdbSource<'_>,
    e: &Expr,
    set: &FxHashSet<Const>,
    counters: &mut Counters,
) -> FxHashSet<Const> {
    match e {
        Expr::Empty => FxHashSet::default(),
        Expr::Id => set.clone(),
        Expr::Sym(p) => {
            let mut out = FxHashSet::default();
            let mut buf = Vec::new();
            for &u in set {
                buf.clear();
                src.successors(*p, u, &mut buf, counters);
                out.extend(buf.iter().copied());
            }
            out
        }
        Expr::Inv(p) => {
            let mut out = FxHashSet::default();
            let mut buf = Vec::new();
            for &u in set {
                buf.clear();
                src.predecessors(*p, u, &mut buf, counters);
                out.extend(buf.iter().copied());
            }
            out
        }
        Expr::Union(parts) => {
            let mut out = FxHashSet::default();
            for part in parts {
                out.extend(image_src(src, part, set, counters));
            }
            out
        }
        Expr::Cat(parts) => {
            let mut cur = set.clone();
            for part in parts {
                cur = image_src(src, part, &cur, counters);
                if cur.is_empty() {
                    break;
                }
            }
            cur
        }
        Expr::Star(inner) => {
            let mut seen = set.clone();
            let mut frontier = set.clone();
            while !frontier.is_empty() {
                let next = image_src(src, inner, &frontier, counters);
                frontier = next.difference(&seen).copied().collect();
                seen.extend(frontier.iter().copied());
            }
            seen
        }
    }
}

/// Singleton-set image.
pub fn image_of(db: &Database, e: &Expr, a: Const, counters: &mut Counters) -> FxHashSet<Const> {
    let mut s = FxHashSet::default();
    s.insert(a);
    image(db, e, &s, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::parse_program;

    #[test]
    fn image_counts_tuples() {
        let p = parse_program("e(a,b). e(a,c). e(b,d).").unwrap();
        let db = Database::from_program(&p);
        let e = p.pred_by_name("e").unwrap();
        let a = p.consts.get(&ConstValue::Str("a".into())).unwrap();
        let mut counters = Counters::new();
        let img = image_of(&db, &Expr::Sym(e), a, &mut counters);
        assert_eq!(img.len(), 2);
        assert_eq!(counters.tuples_retrieved, 2);
        assert_eq!(counters.index_probes, 1);
    }

    #[test]
    fn star_image_on_chain() {
        let p = parse_program("e(a,b). e(b,c). e(c,d).").unwrap();
        let db = Database::from_program(&p);
        let e = p.pred_by_name("e").unwrap();
        let a = p.consts.get(&ConstValue::Str("a".into())).unwrap();
        let mut counters = Counters::new();
        let img = image_of(&db, &Expr::star(Expr::Sym(e)), a, &mut counters);
        assert_eq!(img.len(), 4);
    }
}
