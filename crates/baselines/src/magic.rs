//! The magic-sets query optimization \[3, 5\]: rewrite an adorned linear
//! program with *magic* predicates that restrict bottom-up evaluation to
//! the facts relevant to the query bindings, then run seminaive
//! evaluation on the rewritten program.
//!
//! For each adorned rule `p^a(X̄) :- before, q^d(Z̄), after` the rewriting
//! produces
//!
//! * a modified rule `p^a(X̄) :- m_p^a(X̄^b), before, q^d(Z̄), after`, and
//! * a magic rule  `m_q^d(Z̄^b) :- m_p^a(X̄^b), before`,
//!
//! seeded with the query's bound constants `m_root(ā)`.  Magic sets works
//! on *relations of the original arity* — the paper's intro quotes
//! Bancilhon–Ramakrishnan: node-set strategies beat arc-set strategies
//! "by an order of magnitude or more", which experiment E1 measures.

use rq_adorn::{adorn, AdornedBody, AdornedPred, AdornedProgram};
use rq_common::{Const, Counters, FxHashMap, FxHashSet, Pred};
use rq_datalog::{seminaive_eval, Atom, Literal, Program, Query, Rule, Term};

/// Result of a magic-sets evaluation.
#[derive(Clone, Debug)]
pub struct MagicOutcome {
    /// Answer rows: values of the query's free positions.
    pub rows: Vec<Vec<Const>>,
    /// Instrumentation from the seminaive run over the rewritten program.
    pub counters: Counters,
    /// The rewritten program (for inspection).
    pub rewritten: Program,
}

/// Rewrite with magic predicates and evaluate bottom-up.
pub fn magic_sets(program: &Program, query: &Query) -> Result<MagicOutcome, rq_adorn::AdornError> {
    let adorned = adorn(program, query)?;
    let rewritten = rewrite(program, query, &adorned);
    let result = seminaive_eval(&rewritten).expect("rewritten program is safe");

    // The adorned query predicate holds the answers.
    let ans_pred = rewritten
        .pred_by_name(&adorned_name(program, adorned.query))
        .expect("answer predicate exists");
    let tuples: Vec<Vec<Const>> = result
        .db
        .relation(ans_pred)
        .iter()
        .map(|t| t.to_vec())
        .collect();
    let rows = query.answer_from_relation(&tuples);
    Ok(MagicOutcome {
        rows,
        counters: result.counters,
        rewritten,
    })
}

fn adorned_name(program: &Program, ap: AdornedPred) -> String {
    format!("{}__{}", program.pred_name(ap.pred), ap.adornment)
}

fn magic_name(program: &Program, ap: AdornedPred) -> String {
    format!("m_{}__{}", program.pred_name(ap.pred), ap.adornment)
}

fn rewrite(program: &Program, query: &Query, adorned: &AdornedProgram) -> Program {
    let mut out = Program::new();
    out.consts = program.consts.clone();

    // Copy base predicates and facts.
    let mut pred_map: FxHashMap<Pred, Pred> = FxHashMap::default();
    for p in program.base_preds() {
        let np = out.pred(program.pred_name(p), program.arity(p));
        pred_map.insert(p, np);
    }
    for (p, tuple) in &program.facts {
        out.add_fact(pred_map[p], tuple.clone());
    }

    // Adorned and magic predicates.
    let adorned_preds: FxHashSet<AdornedPred> = adorned
        .rules
        .iter()
        .flat_map(|r| [Some(r.head), r.body_child()].into_iter().flatten())
        .collect();
    let mut ap_pred: FxHashMap<AdornedPred, Pred> = FxHashMap::default();
    let mut magic_pred: FxHashMap<AdornedPred, Pred> = FxHashMap::default();
    for &ap in &adorned_preds {
        ap_pred.insert(
            ap,
            out.pred(&adorned_name(program, ap), program.arity(ap.pred)),
        );
        magic_pred.insert(
            ap,
            out.pred(
                &magic_name(program, ap),
                ap.adornment.bound_positions().len().max(1),
            ),
        );
    }

    let map_lit = |lit: &Literal| -> Literal {
        match lit {
            Literal::Atom(a) => Literal::Atom(Atom::new(pred_map[&a.pred], a.args.clone())),
            cmp => cmp.clone(),
        }
    };

    for ar in &adorned.rules {
        let rule = &program.rules[ar.rule_idx];
        let head_bound_args: Vec<Term> = ar
            .head
            .adornment
            .bound_positions()
            .into_iter()
            .map(|i| rule.head.args[i])
            .collect();
        let magic_head_args = if head_bound_args.is_empty() {
            // Nullary magic is encoded unary over a dummy constant; the
            // seed below provides it.
            vec![Term::Var(rq_common::Var(u32::MAX))] // replaced just below
        } else {
            head_bound_args.clone()
        };
        // Guard literal m_p^a(X̄^b).
        let guard = if head_bound_args.is_empty() {
            None
        } else {
            Some(Literal::Atom(Atom::new(
                magic_pred[&ar.head],
                magic_head_args,
            )))
        };

        match &ar.body {
            AdornedBody::Base => {
                let mut body: Vec<Literal> = Vec::with_capacity(rule.body.len() + 1);
                body.extend(guard.clone());
                body.extend(rule.body.iter().map(map_lit));
                out.add_rule(Rule {
                    head: Atom::new(ap_pred[&ar.head], rule.head.args.clone()),
                    body,
                    var_names: rule.var_names.clone(),
                });
            }
            AdornedBody::Recursive {
                derived_idx,
                child,
                before,
                after,
            } => {
                let child_atom = rule.body[*derived_idx].as_atom().expect("derived");
                // Modified rule: guard, before, child (adorned), after.
                let mut body: Vec<Literal> = Vec::new();
                body.extend(guard.clone());
                for &li in before {
                    body.push(map_lit(&rule.body[li]));
                }
                body.push(Literal::Atom(Atom::new(
                    ap_pred[child],
                    child_atom.args.clone(),
                )));
                for &li in after {
                    body.push(map_lit(&rule.body[li]));
                }
                out.add_rule(Rule {
                    head: Atom::new(ap_pred[&ar.head], rule.head.args.clone()),
                    body,
                    var_names: rule.var_names.clone(),
                });
                // Magic rule: m_child(Z̄^b) :- guard, before.
                let child_bound_args: Vec<Term> = child
                    .adornment
                    .bound_positions()
                    .into_iter()
                    .map(|i| child_atom.args[i])
                    .collect();
                if !child_bound_args.is_empty() {
                    let mut mbody: Vec<Literal> = Vec::new();
                    mbody.extend(guard.clone());
                    for &li in before {
                        mbody.push(map_lit(&rule.body[li]));
                    }
                    if mbody.is_empty() {
                        // No restriction flows: the magic set for the
                        // child is unrestricted; seed from the full base
                        // column is not expressible as a rule, so fall
                        // back to the child rules having no guard — here
                        // we simply skip generating the magic rule and
                        // the guard was already omitted for empty bounds.
                    } else {
                        out.add_rule(Rule {
                            head: Atom::new(magic_pred[child], child_bound_args),
                            body: mbody,
                            var_names: rule.var_names.clone(),
                        });
                    }
                }
            }
        }
    }

    // Seed: m_root(ā).
    let bound: Vec<Const> = query
        .args
        .iter()
        .filter_map(|a| match a {
            rq_datalog::QueryArg::Bound(c) => Some(*c),
            rq_datalog::QueryArg::Free => None,
        })
        .collect();
    if !bound.is_empty() {
        let root = AdornedPred {
            pred: adorned.query.pred,
            adornment: adorned.query.adornment,
        };
        out.add_fact(magic_pred[&root], bound);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    fn run(src: &str, query: &str) -> (Program, Query, MagicOutcome) {
        let mut program = parse_program(src).unwrap();
        let q = Query::parse(&mut program, query).unwrap();
        let out = magic_sets(&program, &q).unwrap();
        (program, q, out)
    }

    #[test]
    fn magic_sg_matches_oracle() {
        let (program, q, out) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg(a, Y)",
        );
        let oracle = rq_adorn::oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle);
    }

    #[test]
    fn magic_restricts_relevant_facts() {
        // A disconnected component must not be evaluated.
        let (program, q, out) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). flat(a1,b1). down(b1,b).\n\
             up(u0,u1). up(u1,u2). up(u2,u3). flat(u3,v3).\n\
             down(v3,v2). down(v2,v1). down(v1,v0).",
            "sg(a, Y)",
        );
        let oracle = rq_adorn::oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle);
        // Without magic, seminaive derives the whole u/v component too.
        let plain = seminaive_eval(&program).unwrap();
        assert!(
            out.counters.nodes_inserted < plain.counters.nodes_inserted + 3,
            "magic {} should not blow up vs plain {}",
            out.counters.nodes_inserted,
            plain.counters.nodes_inserted
        );
        let sg = program.pred_by_name("sg").unwrap();
        // Plain seminaive computes 6 sg facts (both components); magic's
        // adorned sg holds only the a-component's two.
        assert_eq!(plain.db.relation(sg).len(), 6);
        let ans_pred = out
            .rewritten
            .pred_by_name("sg__bf")
            .expect("adorned predicate");
        let magic_db = seminaive_eval(&out.rewritten).unwrap();
        assert_eq!(magic_db.db.relation(ans_pred).len(), 2);
    }

    #[test]
    fn magic_flight_with_builtins() {
        let (program, q, out) = run(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,900,ams,1130).\n\
             flight(ams,1200,cdg,1330).\n\
             flight(cdg,1400,nce,1530).\n\
             is_deptime(900). is_deptime(1200). is_deptime(1400).",
            "cnx(hel, 900, D, AT)",
        );
        let oracle = rq_adorn::oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle);
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn magic_two_adornment_program() {
        let (program, q, out) = run(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(m1,n1). b0(m2,n2). b0(m3,n3).\n\
             b1(a,n2). b1(m2,n3). b1(m1,n1). b1(m3,n1).",
            "p(a, Y)",
        );
        let oracle = rq_adorn::oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle);
    }

    #[test]
    fn magic_transitive_closure() {
        let (program, q, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(x,y).",
            "tc(a, Y)",
        );
        let oracle = rq_adorn::oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle);
        assert_eq!(out.rows.len(), 3);
    }
}
