//! The query/subquery method (Vieille \[24\]): top-down, set-at-a-time
//! evaluation with memoized subqueries.
//!
//! A *subquery* is an adorned predicate plus a tuple of values for its
//! bound positions.  Starting from the user query, rules are expanded
//! left to right: the before-join generates child subqueries for the
//! derived literal, child answers feed the after-join, and everything is
//! memoized, iterating to a global fixpoint.  Unlike Prolog (see
//! [`crate::sld::sld`]) QSQ never repeats a subquery — it "remembers previous
//! firings", the paper's factor (1).

use rq_adorn::{adorn, AdornedBody, AdornedPred, AdornedProgram};
use rq_common::{Const, Counters, FxHashMap, FxHashSet};
use rq_datalog::{fire_rule, Atom, Database, Literal, Program, Query, Rule, Term, WholeDb};

/// Result of a QSQ evaluation.
#[derive(Clone, Debug)]
pub struct QsqOutcome {
    /// Answer rows: values of the query's free positions, sorted.
    pub rows: Vec<Vec<Const>>,
    /// Instrumentation.
    pub counters: Counters,
    /// Number of distinct subqueries asked.
    pub subqueries: usize,
}

type BoundTuple = Vec<Const>;
type FreeTuple = Vec<Const>;

/// Evaluate an n-ary query with the query/subquery strategy.
pub fn qsq(program: &Program, query: &Query) -> Result<QsqOutcome, rq_adorn::AdornError> {
    let adorned = adorn(program, query)?;
    let db = Database::from_program(program);
    let mut counters = Counters::new();

    // answers[(pred, bound values)] = set of free-position tuples.
    let mut answers: FxHashMap<(AdornedPred, BoundTuple), FxHashSet<FreeTuple>> =
        FxHashMap::default();
    let root_bound: BoundTuple = query
        .args
        .iter()
        .filter_map(|a| match a {
            rq_datalog::QueryArg::Bound(c) => Some(*c),
            rq_datalog::QueryArg::Free => None,
        })
        .collect();
    let root = (adorned.query, root_bound);
    answers.entry(root.clone()).or_default();

    // Iterate to fixpoint: each pass expands every known subquery with
    // every rule; new subqueries and new answers trigger another pass.
    loop {
        counters.iterations += 1;
        let mut changed = false;
        let pending: Vec<(AdornedPred, BoundTuple)> = answers.keys().cloned().collect();
        for (ap, bound) in pending {
            for ar in adorned.rules.iter().filter(|r| r.head == ap) {
                changed |= expand_rule(
                    program,
                    &db,
                    &adorned,
                    ar,
                    &bound,
                    &mut answers,
                    &mut counters,
                );
            }
        }
        if !changed {
            break;
        }
    }

    let mut rows: Vec<FreeTuple> = answers[&root].iter().cloned().collect();
    rows.sort();
    let subqueries = answers.len();
    Ok(QsqOutcome {
        rows,
        counters,
        subqueries,
    })
}

/// Expand one rule for one subquery.  Returns whether anything new was
/// learned (a new subquery or a new answer).
fn expand_rule(
    program: &Program,
    db: &Database,
    _adorned: &AdornedProgram,
    ar: &rq_adorn::AdornedRule,
    bound: &BoundTuple,
    answers: &mut FxHashMap<(AdornedPred, BoundTuple), FxHashSet<FreeTuple>>,
    counters: &mut Counters,
) -> bool {
    let rule = &program.rules[ar.rule_idx];
    let bound_positions = ar.head.adornment.bound_positions();
    if bound.len() != bound_positions.len() {
        return false;
    }
    // Substitute the subquery's bound values into the rule.
    let mut subst: FxHashMap<rq_common::Var, Const> = FxHashMap::default();
    for (&pos, &val) in bound_positions.iter().zip(bound) {
        let Some(v) = rule.head.args[pos].as_var() else {
            return false;
        };
        if let Some(&prev) = subst.get(&v) {
            if prev != val {
                return false;
            }
        }
        subst.insert(v, val);
    }
    let apply = |t: &Term, subst: &FxHashMap<rq_common::Var, Const>| -> Term {
        match t {
            Term::Var(v) => subst.get(v).map(|&c| Term::Const(c)).unwrap_or(*t),
            Term::Const(_) => *t,
        }
    };
    let free_head_terms: Vec<Term> = ar
        .head
        .adornment
        .free_positions()
        .into_iter()
        .map(|i| apply(&rule.head.args[i], &subst))
        .collect();

    let key = (ar.head, bound.clone());
    match &ar.body {
        AdornedBody::Base => {
            // One flat join over the whole body.
            let body: Vec<Literal> = rule
                .body
                .iter()
                .map(|l| substitute_literal(l, &subst, &apply))
                .collect();
            let synthetic = Rule {
                head: Atom::new(rule.head.pred, free_head_terms),
                body,
                var_names: rule.var_names.clone(),
            };
            let mut new = Vec::new();
            fire_rule(program, &synthetic, &WholeDb(db), counters, &mut |t| {
                new.push(t.to_vec());
            })
            .expect("safe");
            let set = answers.get_mut(&key).expect("subquery registered");
            let before = set.len();
            set.extend(new);
            set.len() != before
        }
        AdornedBody::Recursive {
            derived_idx,
            child,
            before,
            after,
        } => {
            let atom = rule.body[*derived_idx].as_atom().expect("derived");
            // Phase 1: join the before-literals to produce child bound
            // tuples.
            let child_bound_terms: Vec<Term> = child
                .adornment
                .bound_positions()
                .into_iter()
                .map(|i| apply(&atom.args[i], &subst))
                .collect();
            let before_body: Vec<Literal> = before
                .iter()
                .map(|&li| substitute_literal(&rule.body[li], &subst, &apply))
                .collect();
            let in_rule = Rule {
                head: Atom::new(rule.head.pred, child_bound_terms.clone()),
                body: before_body.clone(),
                var_names: rule.var_names.clone(),
            };
            let mut child_bounds: Vec<BoundTuple> = Vec::new();
            fire_rule(program, &in_rule, &WholeDb(db), counters, &mut |t| {
                child_bounds.push(t.to_vec());
            })
            .expect("safe");
            child_bounds.sort();
            child_bounds.dedup();

            let mut changed = false;
            for cb in child_bounds {
                let child_key = (*child, cb.clone());
                if !answers.contains_key(&child_key) {
                    answers.entry(child_key.clone()).or_default();
                    changed = true;
                }
                // Phase 2: for each child answer, join the after side.
                let child_answers: Vec<FreeTuple> = answers[&child_key].iter().cloned().collect();
                for ca in child_answers {
                    // Bind the child's free positions to the answer.
                    let mut subst2 = subst.clone();
                    let mut consistent = true;
                    for (&pos, &val) in child.adornment.free_positions().iter().zip(ca.iter()) {
                        match atom.args[pos] {
                            Term::Var(v) => {
                                if let Some(&prev) = subst2.get(&v) {
                                    if prev != val {
                                        consistent = false;
                                        break;
                                    }
                                }
                                subst2.insert(v, val);
                            }
                            Term::Const(c) => {
                                if c != val {
                                    consistent = false;
                                    break;
                                }
                            }
                        }
                    }
                    // Also re-check the child's *bound* side against cb
                    // (it was produced by the before-join, so it is
                    // consistent by construction).
                    if !consistent {
                        continue;
                    }
                    let apply2 = |t: &Term, s: &FxHashMap<rq_common::Var, Const>| -> Term {
                        match t {
                            Term::Var(v) => s.get(v).map(|&c| Term::Const(c)).unwrap_or(*t),
                            Term::Const(_) => *t,
                        }
                    };
                    // The before-literals may bind variables used in the
                    // head's free side only through the child bound
                    // tuple; bind those too.
                    for (&pos, &val) in child.adornment.bound_positions().iter().zip(cb.iter()) {
                        if let Term::Var(v) = atom.args[pos] {
                            subst2.entry(v).or_insert(val);
                        }
                    }
                    let after_body: Vec<Literal> = after
                        .iter()
                        .map(|&li| substitute_literal(&rule.body[li], &subst2, &apply2))
                        .collect();
                    let head_terms: Vec<Term> = ar
                        .head
                        .adornment
                        .free_positions()
                        .into_iter()
                        .map(|i| apply2(&rule.head.args[i], &subst2))
                        .collect();
                    let out_rule = Rule {
                        head: Atom::new(rule.head.pred, head_terms),
                        // Re-run the before body so head-free variables
                        // bound only by before-literals (non-chain-ish
                        // shapes) stay consistent with cb; cheap because
                        // everything relevant is already substituted.
                        body: before_body
                            .iter()
                            .map(|l| substitute_literal(l, &subst2, &apply2))
                            .chain(after_body)
                            .collect(),
                        var_names: rule.var_names.clone(),
                    };
                    let mut new = Vec::new();
                    fire_rule(program, &out_rule, &WholeDb(db), counters, &mut |t| {
                        new.push(t.to_vec());
                    })
                    .expect("safe");
                    let set = answers.get_mut(&key).expect("subquery registered");
                    let before_len = set.len();
                    set.extend(new);
                    changed |= set.len() != before_len;
                }
            }
            changed
        }
    }
}

fn substitute_literal(
    lit: &Literal,
    subst: &FxHashMap<rq_common::Var, Const>,
    apply: &impl Fn(&Term, &FxHashMap<rq_common::Var, Const>) -> Term,
) -> Literal {
    match lit {
        Literal::Atom(a) => Literal::Atom(Atom::new(
            a.pred,
            a.args.iter().map(|t| apply(t, subst)).collect(),
        )),
        Literal::Cmp { op, lhs, rhs } => Literal::Cmp {
            op: *op,
            lhs: apply(lhs, subst),
            rhs: apply(rhs, subst),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_adorn::oracle_rows;
    use rq_datalog::parse_program;

    fn check(src: &str, query: &str) {
        let mut program = parse_program(src).unwrap();
        let q = Query::parse(&mut program, query).unwrap();
        let out = qsq(&program, &q).unwrap();
        let oracle = oracle_rows(&program, &q);
        assert_eq!(out.rows, oracle, "query {query} on\n{src}");
    }

    #[test]
    fn qsq_transitive_closure() {
        check(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(x,y).",
            "tc(a, Y)",
        );
    }

    #[test]
    fn qsq_same_generation() {
        check(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg(a, Y)",
        );
    }

    #[test]
    fn qsq_cyclic_terminates() {
        check(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,a). e(b,c).",
            "tc(a, Y)",
        );
    }

    #[test]
    fn qsq_flight_program() {
        check(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). flight(ams,720,cdg,810). flight(cdg,840,nce,930).\n\
             is_deptime(540). is_deptime(720). is_deptime(840).",
            "cnx(hel, 540, D, AT)",
        );
    }

    #[test]
    fn qsq_naughton_two_adornments() {
        check(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(m1,n1). b0(m2,n2). b1(a,n2). b1(m2,n1). b1(m1,n2).",
            "p(a, Y)",
        );
    }

    #[test]
    fn qsq_memoizes_subqueries() {
        // A diamond: both branches ask the same subquery; QSQ asks once.
        let mut program = parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(s,l). e(s,r). e(l,m). e(r,m). e(m,t).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "tc(s, Y)").unwrap();
        let out = qsq(&program, &q).unwrap();
        // Subqueries: tc(s,·), tc(l,·), tc(r,·), tc(m,·), tc(t,·) — 5,
        // not 6 (m is reached from both l and r but asked once).
        assert_eq!(out.subqueries, 5);
    }
}
