//! Comparison strategies for the paper's evaluation (§3's table and the
//! surrounding discussion):
//!
//! * [`mod@hn`] — the Henschen–Naqvi iterative node-set method \[7\];
//! * [`mod@counting`] — the counting and reverse-counting methods \[3\];
//! * [`mod@magic`] — magic sets over adorned programs \[3, 5\];
//! * [`mod@hunt`] — the Hunt–Szymanski–Ullman preconstructed-graph
//!   evaluator \[8\] that the paper's demand-driven algorithm improves on;
//! * [`mod@qsq`] — the query/subquery method \[24\] (memoized top-down);
//! * [`mod@sld`] — Prolog-style SLD resolution (unmemoized top-down, the
//!   paper's "duplication of work" exemplar);
//! * [`mod@image`] — the shared instrumented image primitive.
//!
//! Naive and seminaive evaluation live in `rq-datalog`; the paper's own
//! algorithm lives in `rq-engine`.  All strategies charge the same
//! [`rq_common::Counters`], so the E1 harness can put them side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binreach;
pub mod counting;
pub mod hn;
pub mod hunt;
pub mod image;
pub mod magic;
pub mod qsq;
pub mod sld;

pub use binreach::{bin_reach, BinReachError, BinReachOutcome};
pub use counting::{counting, reverse_counting, CountingOutcome};
pub use hn::{henschen_naqvi, HnOutcome};
pub use hunt::HuntGraph;
pub use image::{image, image_of};
pub use magic::{magic_sets, MagicOutcome};
pub use qsq::{qsq, QsqOutcome};
pub use sld::{sld, SldOutcome};
