//! The counting and reverse-counting methods of Bancilhon, Maier, Sagiv
//! and Ullman \[3\], for queries `p(a, Y)` over equations
//! `p = e0 ∪ e1·p·e2`.
//!
//! *Counting* indexes the magic set by distance: ascending, it computes
//! the level sets `U_k = e1^k(a)` as `(node, level)` pairs; descending,
//! it walks `(node, level) → (e2-successor, level−1)` pairs from the
//! `e0`-images, memoizing pairs so each is expanded once.  The answer is
//! the nodes that reach level 0.  The paper notes our traversal's time
//! bounds coincide with counting's — the `EM(p,i)` hierarchy "effectively
//! includes the process of counting" — and the E1 benchmark confirms it.
//!
//! *Reverse counting* processes the down side from each candidate answer
//! node backwards (via `e2⁻¹`), checking whether it meets the flat
//! fringe at the matching level.  Exploring per-candidate is what makes
//! it quadratic where counting is linear.
//!
//! Both methods assume acyclic data; `max_levels` bounds the ascent
//! otherwise (the Marchetti-Spaccamela m·n bound makes them complete on
//! cyclic data too, at the usual cost).

use crate::image::image;
use rq_common::{Const, Counters, FxHashSet, Pred};
use rq_datalog::Database;
use rq_relalg::{linear_decomposition, EqSystem, Expr};

/// Result of a counting-family evaluation.
#[derive(Clone, Debug)]
pub struct CountingOutcome {
    /// The answer set.
    pub answers: FxHashSet<Const>,
    /// Instrumentation; `nodes_inserted` counts the `(node, level)`
    /// pairs, the method's natural cost measure.
    pub counters: Counters,
    /// Whether the ascent exhausted naturally.
    pub converged: bool,
}

fn decompose(system: &EqSystem, p: Pred) -> (Expr, Expr, Expr) {
    linear_decomposition(p, &system.rhs[&p])
        .expect("counting requires the linear shape p = e0 ∪ e1·p·e2")
}

/// Ascend through `e1`, producing the level sets and memoized pairs.
fn ascend(
    db: &Database,
    e1: &Expr,
    a: Const,
    max_levels: Option<u64>,
    counters: &mut Counters,
) -> (Vec<FxHashSet<Const>>, bool) {
    let mut levels: Vec<FxHashSet<Const>> = vec![[a].into_iter().collect()];
    counters.nodes_inserted += 1;
    let mut converged = true;
    loop {
        let next = image(db, e1, levels.last().expect("nonempty"), counters);
        if next.is_empty() {
            break;
        }
        counters.nodes_inserted += next.len() as u64;
        levels.push(next);
        if let Some(limit) = max_levels {
            if levels.len() as u64 > limit {
                converged = false;
                break;
            }
        }
    }
    (levels, converged)
}

/// The counting method.
pub fn counting(
    system: &EqSystem,
    db: &Database,
    p: Pred,
    a: Const,
    max_levels: Option<u64>,
) -> CountingOutcome {
    let (e0, e1, e2) = decompose(system, p);
    let mut counters = Counters::new();
    let (levels, converged) = ascend(db, &e1, a, max_levels, &mut counters);
    counters.iterations = levels.len() as u64;

    // Descend: worklist of (node, level) pairs, each expanded once.
    let mut answers: FxHashSet<Const> = FxHashSet::default();
    let mut seen: FxHashSet<(Const, u64)> = FxHashSet::default();
    let mut stack: Vec<(Const, u64)> = Vec::new();
    for (k, level_set) in levels.iter().enumerate() {
        let fringe = image(db, &e0, level_set, &mut counters);
        for f in fringe {
            if seen.insert((f, k as u64)) {
                counters.nodes_inserted += 1;
                stack.push((f, k as u64));
            }
        }
    }
    let mut buf: FxHashSet<Const> = FxHashSet::default();
    while let Some((x, lvl)) = stack.pop() {
        if lvl == 0 {
            answers.insert(x);
            continue;
        }
        buf.clear();
        buf.insert(x);
        let nexts = image(db, &e2, &buf, &mut counters);
        for y in nexts {
            if seen.insert((y, lvl - 1)) {
                counters.nodes_inserted += 1;
                stack.push((y, lvl - 1));
            }
        }
    }
    CountingOutcome {
        answers,
        counters,
        converged,
    }
}

/// The reverse-counting method: identical ascent, but the down side is
/// checked per candidate answer node, exploring backwards through `e2⁻¹`
/// without sharing across candidates.
pub fn reverse_counting(
    system: &EqSystem,
    db: &Database,
    p: Pred,
    a: Const,
    max_levels: Option<u64>,
) -> CountingOutcome {
    let (e0, e1, e2) = decompose(system, p);
    let mut counters = Counters::new();
    let (levels, converged) = ascend(db, &e1, a, max_levels, &mut counters);
    counters.iterations = levels.len() as u64;

    // Flat fringe with levels.
    let mut fringe: Vec<FxHashSet<Const>> = Vec::with_capacity(levels.len());
    for level_set in &levels {
        fringe.push(image(db, &e0, level_set, &mut counters));
    }

    // Candidate answers: everything reachable from the fringe through
    // e2* (a superset of the true answers).
    let all_fringe: FxHashSet<Const> = fringe.iter().flatten().copied().collect();
    let candidates = image(db, &Expr::star(e2.clone()), &all_fringe, &mut counters);

    // Per candidate: BFS backwards through e2⁻¹ with level counting; the
    // candidate is an answer if some fringe node of level k is reached
    // in exactly k backward steps.
    let e2_inv = e2.inverse();
    let max_k = levels.len() as u64;
    let mut answers: FxHashSet<Const> = FxHashSet::default();
    for &w in &candidates {
        let mut frontier: FxHashSet<Const> = [w].into_iter().collect();
        let mut hit = fringe.first().is_some_and(|f0| f0.contains(&w));
        let mut steps: u64 = 0;
        while !hit && !frontier.is_empty() && steps < max_k {
            frontier = image(db, &e2_inv, &frontier, &mut counters);
            counters.nodes_inserted += frontier.len() as u64;
            steps += 1;
            if let Some(fk) = fringe.get(steps as usize) {
                hit = frontier.iter().any(|x| fk.contains(x));
            }
        }
        if hit {
            answers.insert(w);
        }
    }
    CountingOutcome {
        answers,
        counters,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::parse_program;
    use rq_relalg::{lemma1, Lemma1Options};

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n";

    fn setup(src: &str) -> (rq_datalog::Program, Database, EqSystem) {
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        (program, db, sys)
    }

    fn oracle(program: &rq_datalog::Program, pred: Pred, a: Const) -> FxHashSet<Const> {
        rq_datalog::naive_eval(program)
            .unwrap()
            .tuples(pred)
            .into_iter()
            .filter(|t| t[0] == a)
            .map(|t| t[1])
            .collect()
    }

    #[test]
    fn counting_matches_oracle() {
        let (program, db, sys) = setup(&format!(
            "{SG} up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z). flat(a1,m).\n\
             down(b2,b1). down(b1,b). down(m,m1)."
        ));
        let sg = program.pred_by_name("sg").unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let out = counting(&sys, &db, sg, a, None);
        assert_eq!(out.answers, oracle(&program, sg, a));
        assert!(out.converged);
    }

    #[test]
    fn reverse_counting_matches_oracle() {
        let (program, db, sys) = setup(&format!(
            "{SG} up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z). flat(a1,m).\n\
             down(b2,b1). down(b1,b). down(m,m1)."
        ));
        let sg = program.pred_by_name("sg").unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let out = reverse_counting(&sys, &db, sg, a, None);
        assert_eq!(out.answers, oracle(&program, sg, a));
    }

    #[test]
    fn counting_linear_on_fig7c() {
        // up chain + flat rungs + descending down chain.  The fringe
        // entry at level k is (b_k, k); its descent step reaches
        // (b_{k-1}, k-1), which is exactly the fringe entry of level
        // k-1 — the memoized pair set stays O(n).
        let n = 40;
        let mut src = String::from(SG);
        for i in 0..n - 1 {
            src.push_str(&format!("up(a{}, a{}).\n", i, i + 1));
        }
        for i in 0..n {
            src.push_str(&format!("flat(a{i}, b{i}).\n"));
        }
        for i in (1..n).rev() {
            src.push_str(&format!("down(b{}, b{}).\n", i, i - 1));
        }
        let (program, db, sys) = setup(&src);
        let sg = program.pred_by_name("sg").unwrap();
        let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
        let out = counting(&sys, &db, sg, a0, None);
        assert_eq!(out.answers.len(), 1);
        assert!(
            (out.counters.nodes_inserted as usize) < 6 * n,
            "counting should be linear here, got {} pairs",
            out.counters.nodes_inserted
        );
    }

    #[test]
    fn reverse_counting_quadratic_on_fig7c() {
        let n = 40;
        let mut src = String::from(SG);
        for i in 0..n - 1 {
            src.push_str(&format!("up(a{}, a{}).\n", i, i + 1));
        }
        for i in 0..n {
            src.push_str(&format!("flat(a{i}, b{i}).\n"));
        }
        for i in (1..n).rev() {
            src.push_str(&format!("down(b{}, b{}).\n", i, i - 1));
        }
        let (program, db, sys) = setup(&src);
        let sg = program.pred_by_name("sg").unwrap();
        let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
        let fwd = counting(&sys, &db, sg, a0, None);
        let rev = reverse_counting(&sys, &db, sg, a0, None);
        assert_eq!(rev.answers, fwd.answers);
        assert!(
            rev.counters.total_work() > 4 * fwd.counters.total_work(),
            "reverse {} !>> forward {}",
            rev.counters.total_work(),
            fwd.counters.total_work()
        );
    }

    #[test]
    fn counting_cyclic_with_bound() {
        let (program, db, sys) = setup(&format!(
            "{SG} up(a1,a2). up(a2,a1). flat(a1,b1). down(b1,b2). down(b2,b3). down(b3,b1)."
        ));
        let sg = program.pred_by_name("sg").unwrap();
        let a1 = program.consts.get(&ConstValue::Str("a1".into())).unwrap();
        let out = counting(&sys, &db, sg, a1, Some(7));
        assert!(!out.converged);
        assert_eq!(out.answers, oracle(&program, sg, a1));
    }
}
