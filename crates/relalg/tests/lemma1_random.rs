//! Lemma 1's stated guarantees, checked on random linear binary-chain
//! programs (not just the paper's worked example):
//!
//! 1. exactly one equation per derived predicate;
//! 3. right-hand sides contain no regular derived predicate;
//! 4. a regular predicate's equation contains nothing mutually
//!    recursive to it;
//! 5. a regular *program* yields derived-free right-hand sides;
//! 7. the solution equals the program's semantics (checked by solving
//!    the final system with the naive image fixpoint and comparing to
//!    the seminaive Datalog oracle).

use rq_common::{Const, FxHashSet};
use rq_datalog::{pred_regularity, program_is_regular, seminaive_eval, Analysis, Database};
use rq_relalg::{lemma1, ImageEval, Lemma1Options};
use rq_workloads::randprog::{random_program, seeded, RandProgConfig, RecursionStyle};

#[test]
fn one_equation_per_derived_predicate() {
    for seed in 0..40 {
        let rp = seeded(seed, RecursionStyle::Mixed);
        let sys = lemma1(&rp.program, &Lemma1Options::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", rp.text))
            .system;
        let derived: FxHashSet<_> = rp.program.derived_preds().collect();
        assert_eq!(sys.lhs.len(), derived.len(), "seed {seed}\n{}", rp.text);
        for p in derived {
            assert!(sys.rhs.contains_key(&p), "seed {seed}: missing equation");
        }
    }
}

#[test]
fn regular_predicates_do_not_occur_in_right_hand_sides() {
    for seed in 0..40 {
        let rp = seeded(seed, RecursionStyle::Mixed);
        let analysis = Analysis::of(&rp.program);
        let sys = lemma1(&rp.program, &Lemma1Options::default())
            .unwrap()
            .system;
        let regular: FxHashSet<_> = rp
            .program
            .derived_preds()
            .filter(|&p| pred_regularity(&rp.program, &analysis, p).is_regular())
            .collect();
        for &p in &sys.lhs {
            assert!(
                !sys.rhs[&p].contains_any(&regular),
                "seed {seed}: equation for {} mentions a regular predicate\n{}",
                rp.program.pred_name(p),
                rp.text
            );
        }
    }
}

#[test]
fn regular_equations_never_self_reference() {
    for seed in 0..40 {
        let rp = seeded(seed, RecursionStyle::Mixed);
        let analysis = Analysis::of(&rp.program);
        let sys = lemma1(&rp.program, &Lemma1Options::default())
            .unwrap()
            .system;
        for &p in &sys.lhs {
            if !pred_regularity(&rp.program, &analysis, p).is_regular() {
                continue;
            }
            // Statement 4: nothing mutually recursive to p — in
            // particular not p itself.
            let clique: FxHashSet<_> = rp
                .program
                .derived_preds()
                .filter(|&q| analysis.mutually_recursive(p, q))
                .collect();
            assert!(
                !sys.rhs[&p].contains_any(&clique),
                "seed {seed}: regular {} still recursive\n{}",
                rp.program.pred_name(p),
                rp.text
            );
        }
    }
}

#[test]
fn regular_programs_get_derived_free_systems() {
    for seed in 0..40 {
        let rp = seeded(seed, RecursionStyle::Regular);
        let analysis = Analysis::of(&rp.program);
        assert!(program_is_regular(&rp.program, &analysis));
        let sys = lemma1(&rp.program, &Lemma1Options::default())
            .unwrap()
            .system;
        assert!(
            !sys.has_derived_occurrences(),
            "seed {seed}: regular program kept derived occurrences\n{}\n{}",
            rp.text,
            sys.display(&rp.program)
        );
    }
}

#[test]
fn solving_the_system_matches_the_datalog_oracle() {
    for seed in 0..25 {
        let rp = random_program(&RandProgConfig {
            seed,
            style: RecursionStyle::Mixed,
            domain: 8,
            facts_per_base: 12,
            ..RandProgConfig::default()
        });
        let db = Database::from_program(&rp.program);
        let sys = lemma1(&rp.program, &Lemma1Options::default())
            .unwrap()
            .system;
        let oracle = seminaive_eval(&rp.program).unwrap();
        let mut ev = ImageEval::with_system(&db, &sys);
        for name in &rp.derived {
            let p = rp.program.pred_by_name(name).unwrap();
            let got = ev.derived_pairs(p).clone();
            let expected: FxHashSet<(Const, Const)> =
                oracle.tuples(p).into_iter().map(|t| (t[0], t[1])).collect();
            assert_eq!(
                got, expected,
                "seed {seed}: {name} disagrees with the oracle\n{}",
                rp.text
            );
        }
    }
}

#[test]
fn elimination_terminates_on_wide_programs() {
    // Stress the step-7 choice and step-8 distribution with more groups
    // and heavier mutual recursion than the defaults.
    for seed in 0..10 {
        let rp = random_program(&RandProgConfig {
            seed,
            groups: 4,
            mutual_prob: 0.8,
            style: RecursionStyle::Mixed,
            base_preds: 4,
            rules_per_pred: 3,
            max_body: 4,
            lower_ref_prob: 0.3,
            domain: 6,
            facts_per_base: 8,
            cyclic: false,
        });
        let out = lemma1(&rp.program, &Lemma1Options::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", rp.text));
        assert!(out.passes < 64, "seed {seed}: {} passes", out.passes);
    }
}
