//! Experiment E7: replay the worked example of §3 (the 12-rule program
//! with predicates p1, p2, p3, q1, q2, r1, r2) through the Lemma 1
//! transformation and check the intermediate and final equation systems
//! shown in the paper.

use rq_common::Pred;
use rq_datalog::{parse_program, Program};
use rq_relalg::{initial_system, lemma1, EqSystem, Lemma1Options};

const PAPER_PROGRAM: &str = "\
p1(X,Z) :- b(X,Y), p2(Y,Z).\n\
p1(X,Z) :- q1(X,Y), p3(Y,Z).\n\
p2(X,Z) :- c(X,Y), p1(Y,Z).\n\
p2(X,Z) :- d(X,Y), p3(Y,Z).\n\
p3(X,Y) :- a(X,Y).\n\
p3(X,Z) :- e(X,Y), p2(Y,Z).\n\
q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
q2(X,Y) :- r2(X,Y).\n\
q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
r1(X,Y) :- b(X,Y).\n\
r1(X,Y) :- r2(X,Y).\n\
r2(X,Z) :- r1(X,Y), c(Y,Z).\n\
a(x0,y0). b(x0,y0). c(x0,y0). d(x0,y0). e(x0,y0).\n";

fn setup() -> Program {
    parse_program(PAPER_PROGRAM).unwrap()
}

fn eq(program: &Program, sys: &EqSystem, lhs: &str) -> String {
    let p = program.pred_by_name(lhs).unwrap();
    let name = |q: Pred| program.pred_name(q).to_string();
    sys.rhs[&p].display(&name)
}

#[test]
fn step1_initial_system_matches_paper() {
    let program = setup();
    let sys = initial_system(&program).unwrap();
    assert_eq!(eq(&program, &sys, "p1"), "b.p2 U q1.p3");
    assert_eq!(eq(&program, &sys, "p2"), "c.p1 U d.p3");
    assert_eq!(eq(&program, &sys, "p3"), "a U e.p2");
    assert_eq!(eq(&program, &sys, "q1"), "a.q2");
    assert_eq!(eq(&program, &sys, "q2"), "r2 U q1.r1");
    assert_eq!(eq(&program, &sys, "r1"), "b U r2");
    assert_eq!(eq(&program, &sys, "r2"), "r1.c");
}

#[test]
fn step2_mutually_recursive_sets_match_paper() {
    let program = setup();
    let sys = initial_system(&program).unwrap();
    let info = sys.recursion_info();
    let by = |n: &str| program.pred_by_name(n).unwrap();
    // {p1, p2, p3}, {q1, q2}, {r1, r2}.
    assert!(info.mutually_recursive(by("p1"), by("p2")));
    assert!(info.mutually_recursive(by("p2"), by("p3")));
    assert!(info.mutually_recursive(by("q1"), by("q2")));
    assert!(info.mutually_recursive(by("r1"), by("r2")));
    assert!(!info.mutually_recursive(by("p1"), by("q1")));
    assert!(!info.mutually_recursive(by("q2"), by("r2")));
}

/// Force step 7 to make the paper's choices: eliminate p3 from
/// {p1,p2,p3}, q1 from {q1,q2}, r2 from {r1,r2}, and later p2 from
/// {p1,p2}.
fn paper_choice(program: &Program) -> impl Fn(&EqSystem, &[Pred]) -> Pred + '_ {
    move |_sys, candidates| {
        for name in ["p3", "q1", "r2", "p2"] {
            let p = program.pred_by_name(name).unwrap();
            if candidates.contains(&p) {
                return p;
            }
        }
        candidates[0]
    }
}

#[test]
fn first_iteration_step7_and_8_match_paper() {
    let program = setup();
    let choice = paper_choice(&program);
    let out = lemma1(
        &program,
        &Lemma1Options {
            choose: Some(&choice),
            record_trace: true,
        },
    )
    .unwrap();
    // The paper shows the system at the end of the first iteration
    // (after step 8):
    //   p1 = b.p2 U q1.a U q1.e.p2
    //   p2 = c.p1 U d.a U d.e.p2
    //   p3 = a U e.p2
    //   q1 = a.q2
    //   q2 = r2 U a.q2.r1
    //   r1 = b U r1.c        (r2 eliminated from r1's equation)
    //   r2 = r1.c
    let snap = out
        .trace
        .iter()
        .find(|(label, sys)| label == "step8" && eq(&program, sys, "p1") == "b.p2 U q1.a U q1.e.p2")
        .map(|(_, sys)| sys.clone())
        .expect("paper's end-of-iteration-1 state must appear in the trace");
    assert_eq!(eq(&program, &snap, "p2"), "c.p1 U d.a U d.e.p2");
    assert_eq!(eq(&program, &snap, "p3"), "a U e.p2");
    assert_eq!(eq(&program, &snap, "q1"), "a.q2");
    assert_eq!(eq(&program, &snap, "q2"), "r2 U a.q2.r1");
    assert_eq!(eq(&program, &snap, "r1"), "b U r1.c");
    assert_eq!(eq(&program, &snap, "r2"), "r1.c");
}

#[test]
fn second_iteration_arden_matches_paper() {
    let program = setup();
    let choice = paper_choice(&program);
    let out = lemma1(
        &program,
        &Lemma1Options {
            choose: Some(&choice),
            record_trace: true,
        },
    )
    .unwrap();
    // After the second iteration's step 4 the paper has
    //   p2 = (d.e)*.(c.p1 U d.a)   and   r1 = b.c*.
    let found = out.trace.iter().any(|(label, sys)| {
        label == "step4"
            && eq(&program, sys, "p2") == "(d.e)*.(c.p1 U d.a)"
            && eq(&program, sys, "r1") == "b.c*"
    });
    assert!(found, "paper's iteration-2 Arden results must appear");
}

#[test]
fn final_system_matches_paper() {
    let program = setup();
    let choice = paper_choice(&program);
    let out = lemma1(
        &program,
        &Lemma1Options {
            choose: Some(&choice),
            record_trace: false,
        },
    )
    .unwrap();
    let sys = &out.system;

    // Final equations as printed at the end of §3's example (modulo the
    // journal's two typographical slips: it prints q1·e·(d·e)*·c inside
    // the starred factor and the p3 equation accordingly).
    assert_eq!(
        eq(&program, sys, "p1"),
        "(b.(d.e)*.c U q1.e.(d.e)*.c)*.(b.(d.e)*.d.a U q1.a U q1.e.(d.e)*.d.a)"
    );
    assert_eq!(eq(&program, sys, "q1"), "a.q2");
    assert_eq!(eq(&program, sys, "q2"), "b.c*.c U a.q2.b.c*");
    assert_eq!(eq(&program, sys, "r1"), "b.c*");
    assert_eq!(eq(&program, sys, "r2"), "b.c*.c");

    // p2 and p3: p1 substituted in.  The paper prints the distributed
    // form `(d.e)*.c.(p1) U (d.e)*.d.a`; our step 8 distributes only
    // while the lhs is still recursive, so we keep the equivalent
    // factored form `(d.e)*.(c.(p1) U d.a)` (the semantics test below
    // confirms equivalence).
    let p1_final = eq(&program, sys, "p1");
    assert_eq!(
        eq(&program, sys, "p2"),
        format!("(d.e)*.(c.{p1_final} U d.a)")
    );
    assert_eq!(
        eq(&program, sys, "p3"),
        format!("a U e.(d.e)*.(c.{p1_final} U d.a)")
    );
}

#[test]
fn final_system_statements_hold() {
    let program = setup();
    let analysis = rq_datalog::Analysis::of(&program);
    let out = lemma1(&program, &Lemma1Options::default()).unwrap();
    let sys = &out.system;

    // Statement (3)/(4): no regular derived predicate occurs in any rhs;
    // regular predicates' equations mention nothing mutually recursive.
    let bad = rq_relalg::check_statements_3_4(&program, &analysis, sys);
    assert!(bad.is_empty(), "violations: {bad:?}");

    // Statement (6): at most one occurrence of a predicate mutually
    // recursive (initial sense) to the lhs per equation.
    for &p in &sys.lhs {
        let clique = analysis.comp_members[analysis.comp[p]].clone();
        let occurrences: usize = clique
            .iter()
            .filter(|&&q| analysis.mutually_recursive(p, q))
            .map(|&q| sys.rhs[&p].count_occurrences(q))
            .sum();
        assert!(
            occurrences <= 1,
            "{} has {} recursive occurrences",
            program.pred_name(p),
            occurrences
        );
    }
}

#[test]
fn final_system_semantics_preserved() {
    // Statement (7): the solution of the system equals the program's
    // semantics.  Check on a concrete EDB via image evaluation vs naive
    // Datalog evaluation, for every derived predicate.
    let src = format!(
        "{}\n a(x1,x2). b(x2,x3). c(x3,x1). d(x1,x3). e(x3,x2). b(x1,x1).",
        PAPER_PROGRAM
    );
    let program = parse_program(&src).unwrap();
    let db = rq_datalog::Database::from_program(&program);
    let out = lemma1(&program, &Lemma1Options::default()).unwrap();
    let naive = rq_datalog::naive_eval(&program).unwrap();
    let mut ev = rq_relalg::ImageEval::with_system(&db, &out.system);
    for name in ["p1", "p2", "p3", "q1", "q2", "r1", "r2"] {
        let p = program.pred_by_name(name).unwrap();
        let via_system = ev.derived_pairs(p).clone();
        let via_naive: rq_common::FxHashSet<(rq_common::Const, rq_common::Const)> =
            naive.tuples(p).into_iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(via_system, via_naive, "disagreement on {name}");
    }
}
