//! Property tests for the Lemma 1 transformation: on randomly generated
//! linear binary-chain programs, the final equation system must (7)
//! preserve the program's semantics, and the structural statements of
//! the lemma must hold.

use proptest::prelude::*;
use rq_common::{Const, FxHashSet, Pred};
use rq_datalog::{naive_eval, parse_program, Analysis, Database, Program};
use rq_relalg::{check_statements_3_4, lemma1, ImageEval, Lemma1Options};

/// A random linear binary-chain program over derived predicates
/// d0..d{nd-1} and base predicates b0..b3, plus random facts.
#[derive(Debug, Clone)]
struct ChainProgram {
    src: String,
}

fn rule_strategy(nd: usize) -> impl Strategy<Value = String> {
    // head: one derived pred.  Body: a chain of 1..4 literals with at
    // most one derived (linearity), encoded as positions.
    let head = 0..nd;
    let body_len = 1..4usize;
    let derived_pos = proptest::option::of(0..3usize);
    let base_choices = proptest::collection::vec(0..4u8, 3);
    let derived_choice = 0..nd;
    (head, body_len, derived_pos, base_choices, derived_choice).prop_map(
        |(h, len, dpos, bases, dchoice)| {
            let vars = ["X", "Y", "Z", "W", "V"];
            let mut lits = Vec::new();
            for i in 0..len {
                let (a, b) = (vars[i], vars[i + 1]);
                match dpos {
                    Some(p) if p == i => lits.push(format!("d{dchoice}({a},{b})")),
                    _ => lits.push(format!("b{}({a},{b})", bases[i % bases.len()])),
                }
            }
            format!("d{h}(X,{}) :- {}.", vars[len], lits.join(", "))
        },
    )
}

fn program_strategy() -> impl Strategy<Value = ChainProgram> {
    let nd = 1..4usize;
    nd.prop_flat_map(|nd| {
        let rules = proptest::collection::vec(rule_strategy(nd), nd..nd + 5);
        let facts = proptest::collection::vec((0..4u8, 0..6u8, 0..6u8), 3..20);
        (Just(nd), rules, facts).prop_map(|(nd, mut rules, facts)| {
            // Ensure every derived predicate has at least one rule
            // (otherwise it's an empty relation, which is fine too, but
            // head coverage exercises more of the transformation).
            for d in 0..nd {
                rules.push(format!("d{d}(X,Y) :- b0(X,Y)."));
            }
            let mut src = rules.join("\n");
            src.push('\n');
            for (b, x, y) in facts {
                src.push_str(&format!("b{b}(c{x},c{y}).\n"));
            }
            // Make sure all base predicates exist.
            for b in 0..4 {
                src.push_str(&format!("b{b}(c0,c0).\n"));
            }
            ChainProgram { src }
        })
    })
}

fn oracle(program: &Program, p: Pred) -> FxHashSet<(Const, Const)> {
    naive_eval(program)
        .unwrap()
        .tuples(p)
        .into_iter()
        .map(|t| (t[0], t[1]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Statement (7): the least solution of the final system equals the
    /// program's semantics, for every derived predicate.
    #[test]
    fn lemma1_preserves_semantics(w in program_strategy()) {
        let program = parse_program(&w.src).expect("generated program parses");
        let db = Database::from_program(&program);
        let out = lemma1(&program, &Lemma1Options::default()).expect("chain program");
        let mut ev = ImageEval::with_system(&db, &out.system);
        for p in program.derived_preds() {
            let via_system = ev.derived_pairs(p).clone();
            let via_naive = oracle(&program, p);
            prop_assert_eq!(
                &via_system, &via_naive,
                "disagreement on {} in\n{}\nfinal system:\n{}",
                program.pred_name(p), w.src, out.system.display(&program)
            );
        }
    }

    /// Statements (3)+(4): regular derived predicates never survive in
    /// right-hand sides.
    #[test]
    fn lemma1_statements_hold(w in program_strategy()) {
        let program = parse_program(&w.src).expect("generated program parses");
        let analysis = Analysis::of(&program);
        let out = lemma1(&program, &Lemma1Options::default()).expect("chain program");
        let bad = check_statements_3_4(&program, &analysis, &out.system);
        prop_assert!(bad.is_empty(), "violations {:?} in\n{}", bad, w.src);
    }

    /// The transformation is deterministic: same input, same output.
    #[test]
    fn lemma1_is_deterministic(w in program_strategy()) {
        let program = parse_program(&w.src).expect("generated program parses");
        let a = lemma1(&program, &Lemma1Options::default()).unwrap();
        let b = lemma1(&program, &Lemma1Options::default()).unwrap();
        prop_assert_eq!(a.system.display(&program), b.system.display(&program));
    }
}
