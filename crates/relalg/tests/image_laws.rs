//! Algebraic laws of image evaluation, property-tested over random
//! expressions and random databases.
//!
//! `ImageEval` is the semantic oracle the rest of the system leans on
//! (the traversal engine, the cyclic bound, candidate-source
//! estimation), so its own algebra deserves direct scrutiny:
//!
//! * `image(e1 ∪ e2, S) = image(e1, S) ∪ image(e2, S)`
//! * `image(e1·e2, S)  = image(e2, image(e1, S))`
//! * `S ⊆ image(e*, S)` and `image(e*, S)` is closed under `e`
//! * `image(e, ∅) = ∅`
//! * `y ∈ image(e, {x})  ⇔  x ∈ image(e⁻¹, {y})`
//! * smart constructors (`union`, `cat`, `star`) preserve semantics
//!   under flattening/normalization

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rq_common::{Const, ConstValue, FxHashSet, Pred};
use rq_datalog::{parse_program, Database, Program};
use rq_relalg::{Expr, ImageEval};

/// A small random database over `npreds` binary relations and `dom`
/// constants (cycles allowed — star must still terminate).
fn random_db(seed: u64, npreds: u32, dom: u32, facts: usize) -> (Program, Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    for _ in 0..facts {
        let p = rng.gen_range(0..npreds);
        let i = rng.gen_range(0..dom);
        let j = rng.gen_range(0..dom);
        src.push_str(&format!("b{p}(n{i},n{j}).\n"));
    }
    // Every predicate must exist even if it drew no facts.
    for p in 0..npreds {
        src.push_str(&format!("b{p}(seed_only,seed_only).\n"));
    }
    let program = parse_program(&src).unwrap();
    let db = Database::from_program(&program);
    (program, db)
}

fn pred(program: &Program, i: u32) -> Pred {
    program.pred_by_name(&format!("b{i}")).unwrap()
}

fn consts(program: &Program, dom: u32) -> Vec<Const> {
    (0..dom)
        .filter_map(|i| program.consts.get(&ConstValue::Str(format!("n{i}"))))
        .collect()
}

fn arb_expr(npreds: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        1 => Just(Expr::Empty),
        1 => Just(Expr::Id),
        4 => (0..npreds).prop_map(|i| Expr::Sym(Pred(i))),
        2 => (0..npreds).prop_map(|i| Expr::Inv(Pred(i))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::union),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::cat),
            inner.prop_map(Expr::star),
        ]
    })
}

/// Remap the `Pred(i)` placeholders of a generated expression onto the
/// program's actual predicate ids.
fn bind(e: &Expr, program: &Program) -> Expr {
    match e {
        Expr::Empty => Expr::Empty,
        Expr::Id => Expr::Id,
        Expr::Sym(p) => Expr::Sym(pred(program, p.0)),
        Expr::Inv(p) => Expr::Inv(pred(program, p.0)),
        Expr::Union(parts) => Expr::union(parts.iter().map(|p| bind(p, program))),
        Expr::Cat(parts) => Expr::cat(parts.iter().map(|p| bind(p, program))),
        Expr::Star(inner) => Expr::star(bind(inner, program)),
    }
}

const NPREDS: u32 = 3;
const DOM: u32 = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn union_distributes_over_image(
        e1 in arb_expr(NPREDS),
        e2 in arb_expr(NPREDS),
        seed in 0u64..500,
    ) {
        let (program, db) = random_db(seed, NPREDS, DOM, 24);
        let (e1, e2) = (bind(&e1, &program), bind(&e2, &program));
        let mut ev = ImageEval::base_only(&db);
        let s: FxHashSet<Const> = consts(&program, 3).into_iter().collect();
        let both = ev.image(&Expr::union([e1.clone(), e2.clone()]), &s);
        let mut split = ev.image(&e1, &s);
        split.extend(ev.image(&e2, &s));
        prop_assert_eq!(both, split);
    }

    #[test]
    fn composition_chains_images(
        e1 in arb_expr(NPREDS),
        e2 in arb_expr(NPREDS),
        seed in 0u64..500,
    ) {
        let (program, db) = random_db(seed, NPREDS, DOM, 24);
        let (e1, e2) = (bind(&e1, &program), bind(&e2, &program));
        let mut ev = ImageEval::base_only(&db);
        let s: FxHashSet<Const> = consts(&program, 3).into_iter().collect();
        let cat = ev.image(&Expr::cat([e1.clone(), e2.clone()]), &s);
        let mid = ev.image(&e1, &s);
        let chained = ev.image(&e2, &mid);
        prop_assert_eq!(cat, chained);
    }

    #[test]
    fn star_is_a_closure(e in arb_expr(NPREDS), seed in 0u64..500) {
        let (program, db) = random_db(seed, NPREDS, DOM, 24);
        let e = bind(&e, &program);
        let mut ev = ImageEval::base_only(&db);
        let s: FxHashSet<Const> = consts(&program, 2).into_iter().collect();
        let closed = ev.image(&Expr::star(e.clone()), &s);
        // Reflexive: contains the sources.
        prop_assert!(s.is_subset(&closed));
        // Closed: one more step adds nothing.
        let step = ev.image(&e, &closed);
        prop_assert!(step.is_subset(&closed), "star not closed under e");
        // Idempotent: (e*)* = e* on this source set.
        let twice = ev.image(&Expr::star(Expr::star(e)), &s);
        prop_assert_eq!(closed, twice);
    }

    #[test]
    fn empty_set_has_empty_image(e in arb_expr(NPREDS), seed in 0u64..500) {
        let (program, db) = random_db(seed, NPREDS, DOM, 24);
        let e = bind(&e, &program);
        let mut ev = ImageEval::base_only(&db);
        prop_assert!(ev.image(&e, &FxHashSet::default()).is_empty());
    }

    #[test]
    fn inverse_flips_membership(e in arb_expr(NPREDS), seed in 0u64..500) {
        let (program, db) = random_db(seed, NPREDS, DOM, 20);
        let e = bind(&e, &program);
        let mut ev = ImageEval::base_only(&db);
        let all = consts(&program, DOM);
        for &x in all.iter().take(4) {
            let fwd = ev.image_of(&e, x);
            for &y in &fwd {
                let back = ev.image_of(&e.inverse(), y);
                prop_assert!(
                    back.contains(&x),
                    "y ∈ image(e, x) but x ∉ image(e⁻¹, y)"
                );
            }
        }
    }

    #[test]
    fn empty_expression_annihilates(e in arb_expr(NPREDS), seed in 0u64..500) {
        let (program, db) = random_db(seed, NPREDS, DOM, 20);
        let e = bind(&e, &program);
        let mut ev = ImageEval::base_only(&db);
        let s: FxHashSet<Const> = consts(&program, 3).into_iter().collect();
        // e·∅ = ∅·e = ∅ by construction of the smart constructor.
        prop_assert_eq!(Expr::cat([e.clone(), Expr::Empty]), Expr::Empty);
        prop_assert_eq!(Expr::cat([Expr::Empty, e.clone()]), Expr::Empty);
        // id is a unit for composition.
        let with_id = ev.image(&Expr::cat([Expr::Id, e.clone(), Expr::Id]), &s);
        let plain = ev.image(&e, &s);
        prop_assert_eq!(with_id, plain);
    }
}

/// Deterministic spot-checks complementing the properties above.
#[test]
fn star_on_a_cycle_reaches_the_whole_cycle() {
    let program = parse_program("b0(n0,n1). b0(n1,n2). b0(n2,n0).").unwrap();
    let db = Database::from_program(&program);
    let b0 = program.pred_by_name("b0").unwrap();
    let n0 = program.consts.get(&ConstValue::Str("n0".into())).unwrap();
    let mut ev = ImageEval::base_only(&db);
    assert_eq!(ev.image_of(&Expr::star(Expr::Sym(b0)), n0).len(), 3);
}

#[test]
fn inverse_of_star_is_star_of_inverse() {
    let program = parse_program("b0(n0,n1). b0(n1,n2). b0(n3,n1).").unwrap();
    let db = Database::from_program(&program);
    let b0 = program.pred_by_name("b0").unwrap();
    let n2 = program.consts.get(&ConstValue::Str("n2".into())).unwrap();
    let mut ev = ImageEval::base_only(&db);
    let a = ev.image_of(&Expr::star(Expr::Sym(b0)).inverse(), n2);
    let b = ev.image_of(&Expr::star(Expr::Inv(b0)), n2);
    assert_eq!(a, b);
    assert_eq!(a.len(), 4); // n2, n1, n0, n3
}
