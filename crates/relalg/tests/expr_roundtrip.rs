//! Property test: `parse(display(e)) == e` (after smart-constructor
//! normalization) for randomly generated expressions.

use proptest::prelude::*;
use rq_common::Pred;
use rq_relalg::{parse_expr, Expr};

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::Empty),
        Just(Expr::Id),
        (0..6u32).prop_map(|i| Expr::Sym(Pred(i))),
        (0..6u32).prop_map(|i| Expr::Inv(Pred(i))),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::union),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::cat),
            inner.prop_map(Expr::star),
        ]
    })
}

fn name(p: Pred) -> String {
    format!("b{}", p.0)
}

fn resolve(s: &str) -> Pred {
    Pred(s[1..].parse().expect("names are b<i>"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(e in expr_strategy()) {
        let shown = e.display(&name);
        let parsed = parse_expr(&shown, resolve).expect("display output parses");
        prop_assert_eq!(&parsed, &e, "display was `{}`", shown);
    }

    #[test]
    fn inverse_is_involution(e in expr_strategy()) {
        prop_assert_eq!(e.inverse().inverse(), e.clone());
    }

    #[test]
    fn substitution_of_self_is_identity(e in expr_strategy()) {
        // Substituting p for itself changes nothing (up to smart
        // constructors, which display identically).
        let sub = e.substitute(Pred(0), &Expr::Sym(Pred(0)));
        prop_assert_eq!(sub.display(&name), e.display(&name));
    }
}
