//! The Lemma 1 transformation: a linear binary-chain program becomes a
//! system of equations `p = e_p` over ∪, ·, * such that
//!
//! 1. there is exactly one equation per derived predicate;
//! 3. no right-hand side mentions a *regular* derived predicate;
//! 4. if `p` is regular, `e_p` mentions nothing mutually recursive to `p`;
//! 5. for a regular program every right-hand side is base-only;
//! 6. under the one-recursive-rule-per-nonregular-predicate condition,
//!    each `e_p` has at most one occurrence mutually recursive to `p`;
//! 7. the least solution equals the program's semantics.
//!
//! The algorithm is the paper's steps 1–9: build the initial system from
//! the rule bodies, then repeatedly (3) group direct recursion, (4)
//! eliminate it with Arden's rule (`p = e0 ∪ p·e1  ⇒  p = e0·e1*`),
//! (5) substitute equations free of their own initial recursion clique,
//! (6) recompute the mutually recursive sets, (7) eliminate one
//! predicate per recursive clique by substitution, and (8) distribute
//! composition over union where recursion hides inside parentheses —
//! until a full pass changes nothing.

use crate::expr::Expr;
use crate::system::EqSystem;
use rq_common::{FxHashMap, FxHashSet, Pred};
use rq_datalog::{binary_chain_violations, Analysis, ChainViolation, Program};

/// Errors from the transformation.
#[derive(Debug, Clone, PartialEq)]
pub enum Lemma1Error {
    /// The program is not a binary-chain program.
    NotBinaryChain(Vec<ChainViolation>),
    /// The rewriting loop exceeded the safety cap (should be impossible
    /// for well-formed inputs; the paper proves termination).
    DidNotTerminate,
}

impl std::fmt::Display for Lemma1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lemma1Error::NotBinaryChain(v) => {
                write!(f, "not a binary-chain program ({} violations)", v.len())
            }
            Lemma1Error::DidNotTerminate => write!(f, "equation rewriting did not terminate"),
        }
    }
}

impl std::error::Error for Lemma1Error {}

/// Step 7 needs to pick which predicate of a mutually recursive clique to
/// eliminate; the paper notes "any choice will work" and suggests
/// preferring the equation with the fewest derived occurrences.
pub type Step7Choice<'a> = dyn Fn(&EqSystem, &[Pred]) -> Pred + 'a;

/// Options controlling the transformation.
#[derive(Default)]
pub struct Lemma1Options<'a> {
    /// Elimination choice for step 7; `None` uses the paper's heuristic
    /// (fewest occurrences of derived predicates, ties by lhs order).
    pub choose: Option<&'a Step7Choice<'a>>,
    /// Record a snapshot of the system after every step that changed it
    /// (used by tests that replay the paper's worked example).
    pub record_trace: bool,
}

/// Output of the transformation.
pub struct Lemma1Output {
    /// The final equation system (one equation per derived predicate).
    pub system: EqSystem,
    /// Snapshots `(step label, system)` if tracing was requested.
    pub trace: Vec<(String, EqSystem)>,
    /// Number of full passes of steps 3–8.
    pub passes: usize,
}

/// Step 1: the initial equation system.  Each rule `p :- p1, ..., pn`
/// contributes the alternative `p1·p2·…·pn` (the concatenation of the
/// body predicate symbols); an empty body contributes `id`.
pub fn initial_system(program: &Program) -> Result<EqSystem, Lemma1Error> {
    let violations = binary_chain_violations(program);
    if !violations.is_empty() {
        return Err(Lemma1Error::NotBinaryChain(violations));
    }
    let mut order: Vec<Pred> = Vec::new();
    let mut alts: FxHashMap<Pred, Vec<Expr>> = FxHashMap::default();
    for rule in &program.rules {
        let p = rule.head.pred;
        let entry = alts.entry(p).or_insert_with(|| {
            order.push(p);
            Vec::new()
        });
        entry.push(Expr::cat(rule.body_atoms().map(|a| Expr::Sym(a.pred))));
    }
    Ok(EqSystem::new(order.into_iter().map(|p| {
        let e = Expr::union(alts.remove(&p).expect("inserted"));
        (p, e)
    })))
}

/// Run the full Lemma 1 transformation.
pub fn lemma1(program: &Program, options: &Lemma1Options) -> Result<Lemma1Output, Lemma1Error> {
    let sys = initial_system(program)?;
    lemma1_from_system(sys, options)
}

/// Run the rewriting loop on an existing initial system (used by the §4
/// transformation, which builds its binary-chain equations directly).
pub fn lemma1_from_system(
    mut sys: EqSystem,
    options: &Lemma1Options,
) -> Result<Lemma1Output, Lemma1Error> {
    let mut trace: Vec<(String, EqSystem)> = Vec::new();
    let snap = |label: &str, sys: &EqSystem, on: bool, t: &mut Vec<(String, EqSystem)>| {
        if on {
            t.push((label.to_string(), sys.clone()));
        }
    };
    snap("step1", &sys, options.record_trace, &mut trace);

    // Step 2: mutual recursion in the *initial* system; step 5's side
    // condition refers to these sets throughout.
    let initial_info = sys.recursion_info();

    let default_choice = |sys: &EqSystem, candidates: &[Pred]| -> Pred {
        let derived = sys.derived();
        *candidates
            .iter()
            .min_by_key(|&&p| {
                let mut count = 0usize;
                let mut syms = FxHashSet::default();
                sys.rhs[&p].symbols(&mut syms);
                for q in &syms {
                    if derived.contains(q) {
                        count += sys.rhs[&p].count_occurrences(*q);
                    }
                }
                // Stable tiebreak by lhs position.
                let pos = sys.lhs.iter().position(|&q| q == p).unwrap_or(usize::MAX);
                count * sys.lhs.len() + pos
            })
            .expect("nonempty candidates")
    };

    const MAX_PASSES: usize = 1000;
    let mut passes = 0;
    loop {
        passes += 1;
        if passes > MAX_PASSES {
            return Err(Lemma1Error::DidNotTerminate);
        }
        let mut changed = false;

        // Steps 3+4: group direct left/right recursion and eliminate it
        // with Arden's rule.
        if arden_pass(&mut sys) {
            changed = true;
            snap("step4", &sys, options.record_trace, &mut trace);
        }

        // Step 5: substitute equations free of their own *initial*
        // recursion clique into all other equations.
        if step5(&mut sys, &initial_info) {
            changed = true;
            snap("step5", &sys, options.record_trace, &mut trace);
        }

        // Step 6: recompute mutually recursive sets; step 7: eliminate
        // one predicate per clique.
        let info = sys.recursion_info();
        if step7(&mut sys, &info, options.choose.unwrap_or(&default_choice)) {
            changed = true;
            snap("step7", &sys, options.record_trace, &mut trace);
        }

        // Step 8: distribute · over ∪ where recursion hides inside.
        let info = sys.recursion_info();
        if step8(&mut sys, &info) {
            changed = true;
            snap("step8", &sys, options.record_trace, &mut trace);
        }

        if !changed {
            break;
        }
    }
    Ok(Lemma1Output {
        system: sys,
        trace,
        passes,
    })
}

/// How one equation splits around its own predicate.
enum Split {
    /// No occurrence of the lhs.
    NoRecursion,
    /// `p = e0 ∪ p·t1 ∪ … ∪ p·tk` (left recursion).
    Left { e0: Vec<Expr>, tails: Vec<Expr> },
    /// `p = e0 ∪ h1·p ∪ … ∪ hk·p` (right recursion).
    Right { e0: Vec<Expr>, heads: Vec<Expr> },
    /// Occurrences of `p` that Arden's rule cannot reach (in the middle
    /// of a chain, under a star, several per alternative, or mixed
    /// left/right).  The equation stays recursive.
    Stuck,
}

fn split_equation(p: Pred, e: &Expr) -> (Split, bool) {
    let mut e0 = Vec::new();
    let mut tails = Vec::new();
    let mut heads = Vec::new();
    let mut dropped_tautology = false;
    let mut stuck = false;
    for alt in e.alternatives() {
        if !alt.contains(p) {
            e0.push(alt);
            continue;
        }
        if alt == Expr::Sym(p) {
            // `p = p ∪ …` contributes nothing to the least solution.
            dropped_tautology = true;
            continue;
        }
        if alt.count_occurrences(p) != 1 {
            stuck = true;
            continue;
        }
        let fs = alt.factors();
        if fs.first() == Some(&Expr::Sym(p)) {
            tails.push(Expr::cat(fs[1..].iter().cloned()));
        } else if fs.last() == Some(&Expr::Sym(p)) {
            heads.push(Expr::cat(fs[..fs.len() - 1].iter().cloned()));
        } else {
            stuck = true;
        }
    }
    let split = if stuck || (!tails.is_empty() && !heads.is_empty()) {
        Split::Stuck
    } else if !tails.is_empty() {
        Split::Left { e0, tails }
    } else if !heads.is_empty() {
        Split::Right { e0, heads }
    } else if dropped_tautology {
        // Only tautologies were recursive: rewrite to the e0 part.
        Split::Left {
            e0,
            tails: Vec::new(),
        }
    } else {
        Split::NoRecursion
    };
    (split, dropped_tautology)
}

/// Steps 3+4 over every equation.  Returns whether anything changed.
fn arden_pass(sys: &mut EqSystem) -> bool {
    let mut changed = false;
    let lhs = sys.lhs.clone();
    for p in lhs {
        let e = sys.rhs[&p].clone();
        let (split, dropped) = split_equation(p, &e);
        let new = match split {
            Split::NoRecursion | Split::Stuck => {
                if dropped {
                    // Rebuild without the tautological alternatives.
                    Expr::union(e.alternatives().into_iter().filter(|a| *a != Expr::Sym(p)))
                } else {
                    continue;
                }
            }
            Split::Left { e0, tails } => {
                // p = e0 ∪ p·(t1 ∪ …)  ⇒  p = e0·(t1 ∪ …)*.
                Expr::cat([Expr::union(e0), Expr::star(Expr::union(tails))])
            }
            Split::Right { e0, heads } => {
                // p = e0 ∪ (h1 ∪ …)·p  ⇒  p = (h1 ∪ …)*·e0.
                Expr::cat([Expr::star(Expr::union(heads)), Expr::union(e0)])
            }
        };
        if new != e {
            sys.set(p, new);
            changed = true;
        }
    }
    changed
}

/// Step 5.  `initial_info` carries the step-2 mutual recursion sets.
fn step5(sys: &mut EqSystem, initial_info: &crate::system::RecursionInfo) -> bool {
    let mut changed = false;
    let lhs = sys.lhs.clone();
    for p in lhs.iter().copied() {
        let clique: FxHashSet<Pred> = initial_info.clique(p).into_iter().collect();
        let e = sys.rhs[&p].clone();
        if e.contains_any(&clique) || e.contains(p) {
            continue;
        }
        for q in lhs.iter().copied() {
            if q == p {
                continue;
            }
            if sys.rhs[&q].contains(p) {
                let new = sys.rhs[&q].substitute(p, &e);
                sys.set(q, new);
                changed = true;
            }
        }
    }
    changed
}

/// Step 7: within each maximal mutually recursive set of the current
/// system, pick one member whose equation does not mention itself and
/// substitute it into the equations of the other members.
fn step7(sys: &mut EqSystem, info: &crate::system::RecursionInfo, choose: &Step7Choice) -> bool {
    let mut changed = false;
    for members in &info.members {
        if members.len() < 2 {
            continue;
        }
        let candidates: Vec<Pred> = members
            .iter()
            .copied()
            .filter(|&p| !sys.rhs[&p].contains(p))
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let p = choose(sys, &candidates);
        let e = sys.rhs[&p].clone();
        for &q in members {
            if q == p {
                continue;
            }
            if sys.rhs[&q].contains(p) {
                let new = sys.rhs[&q].substitute(p, &e);
                sys.set(q, new);
                changed = true;
            }
        }
    }
    changed
}

/// Step 8: in the equation for `p`, distribute composition over any union
/// factor containing a predicate of `p`'s current recursion clique (or
/// `p` itself), so the recursion surfaces as a leading or trailing factor
/// for the next Arden pass.
fn step8(sys: &mut EqSystem, info: &crate::system::RecursionInfo) -> bool {
    let mut changed = false;
    let lhs = sys.lhs.clone();
    for p in lhs {
        let mut targets: FxHashSet<Pred> = info.clique(p).into_iter().collect();
        targets.insert(p);
        let e = sys.rhs[&p].clone();
        let new = distribute(&e, &targets);
        if new != e {
            sys.set(p, new);
            changed = true;
        }
    }
    changed
}

/// Distribute `·` over `∪` wherever a union factor contains one of the
/// target predicates.  Factors without targets are left intact, so the
/// expansion stays as small as possible.
fn distribute(e: &Expr, targets: &FxHashSet<Pred>) -> Expr {
    match e {
        Expr::Union(parts) => Expr::union(parts.iter().map(|q| distribute(q, targets))),
        Expr::Star(inner) => Expr::star(distribute(inner, targets)),
        Expr::Cat(parts) => {
            let parts: Vec<Expr> = parts.iter().map(|f| distribute(f, targets)).collect();
            let needs_expansion = parts
                .iter()
                .any(|f| matches!(f, Expr::Union(_)) && f.contains_any(targets));
            if !needs_expansion {
                return Expr::cat(parts);
            }
            // Cartesian expansion over the union factors that contain a
            // target; other factors stay atomic.
            let mut alts: Vec<Vec<Expr>> = vec![Vec::new()];
            for f in parts {
                match f {
                    Expr::Union(opts) if opts.iter().any(|o| o.contains_any(targets)) => {
                        let mut next = Vec::with_capacity(alts.len() * opts.len());
                        for prefix in &alts {
                            for o in &opts {
                                let mut row = prefix.clone();
                                row.push(o.clone());
                                next.push(row);
                            }
                        }
                        alts = next;
                    }
                    other => {
                        for row in &mut alts {
                            row.push(other.clone());
                        }
                    }
                }
            }
            Expr::union(alts.into_iter().map(Expr::cat))
        }
        leaf => leaf.clone(),
    }
}

/// Verify the lemma's statements (3) and (4) against the original program:
/// no right-hand side mentions a regular derived predicate, and a regular
/// predicate's right-hand side mentions nothing mutually recursive to it.
/// Returns the offending `(lhs, occurring pred)` pairs.
pub fn check_statements_3_4(
    program: &Program,
    analysis: &Analysis,
    sys: &EqSystem,
) -> Vec<(Pred, Pred)> {
    let mut bad = Vec::new();
    for &p in &sys.lhs {
        let mut syms = FxHashSet::default();
        sys.rhs[&p].symbols(&mut syms);
        for q in syms {
            if program.is_derived(q)
                && rq_datalog::pred_regularity(program, analysis, q).is_regular()
            {
                bad.push((p, q));
            }
            if rq_datalog::pred_regularity(program, analysis, p).is_regular()
                && analysis.mutually_recursive(p, q)
            {
                bad.push((p, q));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    fn name_of(program: &Program) -> impl Fn(Pred) -> String + '_ {
        |p| program.pred_name(p).to_string()
    }

    #[test]
    fn initial_system_of_same_generation() {
        let p = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             flat(a,b).",
        )
        .unwrap();
        let sys = initial_system(&p).unwrap();
        assert_eq!(sys.display(&p), "sg = flat U up.sg.down\n");
    }

    #[test]
    fn sg_equation_survives_unchanged() {
        // Middle recursion: nothing to eliminate, final system identical.
        let p = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             flat(a,b).",
        )
        .unwrap();
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        assert_eq!(out.system.display(&p), "sg = flat U up.sg.down\n");
    }

    #[test]
    fn right_linear_closure_becomes_star() {
        let p = parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b).",
        )
        .unwrap();
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        // tc = e ∪ e·tc  ⇒  tc = e*·e.
        assert_eq!(out.system.display(&p), "tc = e*.e\n");
        assert!(!out.system.has_derived_occurrences());
    }

    #[test]
    fn left_linear_closure_becomes_star() {
        let p = parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- tc(X,Y), e(Y,Z).\n\
             e(a,b).",
        )
        .unwrap();
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        // tc = e ∪ tc·e  ⇒  tc = e·e*.
        assert_eq!(out.system.display(&p), "tc = e.e*\n");
    }

    #[test]
    fn reflexive_transitive_closure_program() {
        // The paper's definition of * as a program:
        //   star(X,X) :- .      star(X,Y) :- star(X,Z), p(Z,Y).
        // The parser cannot express the empty body, so build it by hand.
        use rq_common::Var;
        use rq_datalog::{Atom, Rule, Term};
        let mut p = parse_program("q(X,Y) :- p(X,Y).\np(a,b).").unwrap();
        let star = p.pred("star", 2);
        let base = p.pred_by_name("p").unwrap();
        p.add_rule(Rule {
            head: Atom::new(star, vec![Term::Var(Var(0)), Term::Var(Var(0))]),
            body: vec![],
            var_names: vec!["X".into()],
        });
        p.add_rule(Rule {
            head: Atom::new(star, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
            body: vec![
                rq_datalog::Literal::Atom(Atom::new(
                    star,
                    vec![Term::Var(Var(0)), Term::Var(Var(2))],
                )),
                rq_datalog::Literal::Atom(Atom::new(
                    base,
                    vec![Term::Var(Var(2)), Term::Var(Var(1))],
                )),
            ],
            var_names: vec!["X".into(), "Y".into(), "Z".into()],
        });
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        // star = id ∪ star·p  ⇒  star = id·p* = p*.
        assert_eq!(out.system.rhs[&star], Expr::star(Expr::Sym(base)));
    }

    #[test]
    fn tautology_dropped() {
        let p = parse_program(
            "q(X,Y) :- q(X,Y).\n\
             q(X,Y) :- e(X,Y).\n\
             e(a,b).",
        )
        .unwrap();
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        assert_eq!(out.system.display(&p), "q = e\n");
    }

    #[test]
    fn pure_left_recursion_is_empty() {
        // q = q·e has least solution ∅ (the paper's "degenerate" case).
        let p = parse_program(
            "q(X,Z) :- q(X,Y), e(Y,Z).\n\
             e(a,b).",
        )
        .unwrap();
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        assert_eq!(out.system.rhs[&p.pred_by_name("q").unwrap()], Expr::Empty);
    }

    #[test]
    fn nonregular_two_pred_clique_keeps_one_recursion() {
        // The paper's q1/q2 fragment: q1 = a·q2, q2 = r2 ∪ q1·r1 with r1,
        // r2 base here.  Eliminating q1 leaves q2 = r2 ∪ a·q2·r1, which
        // is middle recursion and must remain.
        let p = parse_program(
            "q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
             q2(X,Y) :- r2(X,Y).\n\
             q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
             a(x,y). r1(x,y). r2(x,y).",
        )
        .unwrap();
        let out = lemma1(&p, &Lemma1Options::default()).unwrap();
        let q1 = p.pred_by_name("q1").unwrap();
        let q2 = p.pred_by_name("q2").unwrap();
        let nm = name_of(&p);
        assert_eq!(out.system.rhs[&q2].display(&nm), "r2 U a.q2.r1");
        // q1's equation references q2 (statement 6: one recursive
        // occurrence each).
        assert_eq!(out.system.rhs[&q1].display(&nm), "a.q2");
    }

    #[test]
    fn rejects_non_binary_chain() {
        let p = parse_program("t(X,Y,Z) :- e(X,Y), f(Y,Z).\ne(a,b).").unwrap();
        assert!(matches!(
            lemma1(&p, &Lemma1Options::default()),
            Err(Lemma1Error::NotBinaryChain(_))
        ));
    }

    #[test]
    fn distribute_expands_only_target_unions() {
        use rq_common::Pred;
        let a = Expr::Sym(Pred(1));
        let b = Expr::Sym(Pred(2));
        let p = Expr::Sym(Pred(0));
        // a·(b ∪ p)·(a ∪ b): only the first union contains the target.
        let e = Expr::cat([
            a.clone(),
            Expr::union([b.clone(), p.clone()]),
            Expr::union([a.clone(), b.clone()]),
        ]);
        let targets: FxHashSet<Pred> = [Pred(0)].into_iter().collect();
        let d = distribute(&e, &targets);
        let nm = |q: Pred| match q.0 {
            0 => "p".to_string(),
            1 => "a".to_string(),
            _ => "b".to_string(),
        };
        assert_eq!(d.display(&nm), "a.b.(a U b) U a.p.(a U b)");
    }
}
