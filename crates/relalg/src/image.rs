//! Direct set-based evaluation of binary-relational expressions as
//! *images* of node sets: `image(e, S) = { v | ∃u ∈ S. (u,v) ∈ e }`.
//!
//! This is the semantics that matters for query answering — the answer
//! to `p(a, Y)` is `image(e_p, {a})` — and it is the oracle the traversal
//! engine is tested against.  Derived predicates are resolved through an
//! equation system by naive fixpoint iteration of images, so this module
//! is deliberately simple and slow; it exists for correctness checks, not
//! performance.

use crate::expr::Expr;
use crate::system::EqSystem;
use rq_common::{Const, FxHashMap, FxHashSet, Pred};
use rq_datalog::{mask_of, Database};

/// Evaluator for images over a database, resolving derived predicates
/// through an equation system.
pub struct ImageEval<'a> {
    db: &'a Database,
    system: Option<&'a EqSystem>,
    /// Memo of fully evaluated derived relations.
    derived_cache: FxHashMap<Pred, FxHashSet<(Const, Const)>>,
}

impl<'a> ImageEval<'a> {
    /// Evaluator over base relations only.
    pub fn base_only(db: &'a Database) -> Self {
        Self {
            db,
            system: None,
            derived_cache: FxHashMap::default(),
        }
    }

    /// Evaluator that resolves derived predicates through `system`.
    pub fn with_system(db: &'a Database, system: &'a EqSystem) -> Self {
        Self {
            db,
            system: Some(system),
            derived_cache: FxHashMap::default(),
        }
    }

    /// The image of `set` under `e`.
    pub fn image(&mut self, e: &Expr, set: &FxHashSet<Const>) -> FxHashSet<Const> {
        match e {
            Expr::Empty => FxHashSet::default(),
            Expr::Id => set.clone(),
            Expr::Sym(p) => self.pred_image(*p, set, false),
            Expr::Inv(p) => self.pred_image(*p, set, true),
            Expr::Union(parts) => {
                let mut out = FxHashSet::default();
                for part in parts {
                    out.extend(self.image(part, set));
                }
                out
            }
            Expr::Cat(parts) => {
                let mut cur = set.clone();
                for part in parts {
                    cur = self.image(part, &cur);
                    if cur.is_empty() {
                        break;
                    }
                }
                cur
            }
            Expr::Star(inner) => {
                // BFS closure: S ∪ image(inner, S) ∪ image(inner², S) ∪ …
                let mut seen = set.clone();
                let mut frontier = set.clone();
                while !frontier.is_empty() {
                    let next = self.image(inner, &frontier);
                    frontier = next.difference(&seen).copied().collect();
                    seen.extend(frontier.iter().copied());
                }
                seen
            }
        }
    }

    /// Image of a single node.
    pub fn image_of(&mut self, e: &Expr, a: Const) -> FxHashSet<Const> {
        let mut s = FxHashSet::default();
        s.insert(a);
        self.image(e, &s)
    }

    fn pred_image(&mut self, p: Pred, set: &FxHashSet<Const>, inverse: bool) -> FxHashSet<Const> {
        if let Some(sys) = self.system {
            if sys.rhs.contains_key(&p) {
                let pairs = self.derived_pairs(p).clone();
                let mut out = FxHashSet::default();
                for (u, v) in pairs {
                    let (from, to) = if inverse { (v, u) } else { (u, v) };
                    if set.contains(&from) {
                        out.insert(to);
                    }
                }
                return out;
            }
        }
        let rel = self.db.relation(p);
        let col = usize::from(!inverse);
        let keycol = usize::from(inverse);
        let mut out = FxHashSet::default();
        let mut ords = Vec::new();
        for &u in set {
            ords.clear();
            rel.lookup(mask_of([keycol]), &[u], &mut ords);
            for &o in &ords {
                out.insert(rel.tuple(o)[col]);
            }
        }
        out
    }

    /// The full extension of a derived predicate, by naive fixpoint over
    /// the equation system.  Memoized.
    pub fn derived_pairs(&mut self, p: Pred) -> &FxHashSet<(Const, Const)> {
        if !self.derived_cache.contains_key(&p) {
            let sys = self.system.expect("derived pred needs a system");
            // Naive simultaneous fixpoint of all equations reachable
            // from p, with id interpreted over the active domain.
            let slice = sys.reachable_from(p);
            let domain = self.active_domain();
            let mut vals: FxHashMap<Pred, FxHashSet<(Const, Const)>> = slice
                .lhs
                .iter()
                .map(|&q| (q, FxHashSet::default()))
                .collect();
            loop {
                let mut changed = false;
                for &q in &slice.lhs {
                    let e = slice.rhs[&q].clone();
                    let next = self.eval_pairs(&e, &vals, &domain);
                    let cur = vals.get_mut(&q).expect("initialized");
                    let before = cur.len();
                    cur.extend(next);
                    changed |= cur.len() != before;
                }
                if !changed {
                    break;
                }
            }
            for (q, set) in vals {
                self.derived_cache.insert(q, set);
            }
        }
        &self.derived_cache[&p]
    }

    /// Every constant occurring in any base relation.
    pub fn active_domain(&self) -> FxHashSet<Const> {
        let mut out = FxHashSet::default();
        for pi in 0..self.db.num_preds() {
            let rel = self.db.relation(Pred::from_index(pi));
            for t in rel.iter() {
                out.extend(t.iter().copied());
            }
        }
        out
    }

    /// Full-relation evaluation used by the fixpoint: `id` ranges over
    /// the active domain.
    fn eval_pairs(
        &mut self,
        e: &Expr,
        vals: &FxHashMap<Pred, FxHashSet<(Const, Const)>>,
        domain: &FxHashSet<Const>,
    ) -> FxHashSet<(Const, Const)> {
        match e {
            Expr::Empty => FxHashSet::default(),
            Expr::Id => domain.iter().map(|&c| (c, c)).collect(),
            Expr::Sym(p) => {
                if let Some(v) = vals.get(p) {
                    v.clone()
                } else {
                    self.db.relation(*p).iter().map(|t| (t[0], t[1])).collect()
                }
            }
            Expr::Inv(p) => {
                let base: FxHashSet<(Const, Const)> = if let Some(v) = vals.get(p) {
                    v.clone()
                } else {
                    self.db.relation(*p).iter().map(|t| (t[0], t[1])).collect()
                };
                base.into_iter().map(|(u, v)| (v, u)).collect()
            }
            Expr::Union(parts) => {
                let mut out = FxHashSet::default();
                for part in parts {
                    out.extend(self.eval_pairs(part, vals, domain));
                }
                out
            }
            Expr::Cat(parts) => {
                let mut cur: Option<FxHashSet<(Const, Const)>> = None;
                for part in parts {
                    let next = self.eval_pairs(part, vals, domain);
                    cur = Some(match cur {
                        None => next,
                        Some(prev) => compose(&prev, &next),
                    });
                }
                cur.unwrap_or_else(|| domain.iter().map(|&c| (c, c)).collect())
            }
            Expr::Star(inner) => {
                let base = self.eval_pairs(inner, vals, domain);
                // Reflexive over the active domain plus transitive closure.
                let mut out: FxHashSet<(Const, Const)> = domain.iter().map(|&c| (c, c)).collect();
                let mut frontier: FxHashSet<(Const, Const)> = out.clone();
                while !frontier.is_empty() {
                    let step = compose(&frontier, &base);
                    frontier = step.difference(&out).copied().collect();
                    out.extend(frontier.iter().copied());
                }
                out
            }
        }
    }
}

fn compose(
    a: &FxHashSet<(Const, Const)>,
    b: &FxHashSet<(Const, Const)>,
) -> FxHashSet<(Const, Const)> {
    let mut by_first: FxHashMap<Const, Vec<Const>> = FxHashMap::default();
    for &(u, v) in b {
        by_first.entry(u).or_default().push(v);
    }
    let mut out = FxHashSet::default();
    for &(u, v) in a {
        if let Some(ws) = by_first.get(&v) {
            for &w in ws {
                out.insert((u, w));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    fn setup(src: &str) -> (rq_datalog::Program, Database) {
        let p = parse_program(src).unwrap();
        let db = Database::from_program(&p);
        (p, db)
    }

    #[test]
    fn image_of_composition() {
        let (p, db) = setup("a(x,y). a(x,z). b(y,w). b(z,w). b(q,r).");
        let a = p.pred_by_name("a").unwrap();
        let b = p.pred_by_name("b").unwrap();
        let mut ev = ImageEval::base_only(&db);
        let e = Expr::cat([Expr::Sym(a), Expr::Sym(b)]);
        let x = p
            .consts
            .get(&rq_common::ConstValue::Str("x".into()))
            .unwrap();
        let img = ev.image_of(&e, x);
        assert_eq!(img.len(), 1); // {w}
    }

    #[test]
    fn image_of_star_includes_source() {
        let (p, db) = setup("e(a,b). e(b,c).");
        let e = p.pred_by_name("e").unwrap();
        let mut ev = ImageEval::base_only(&db);
        let a = p
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let img = ev.image_of(&Expr::star(Expr::Sym(e)), a);
        assert_eq!(img.len(), 3); // {a, b, c}
    }

    #[test]
    fn image_of_star_on_cycle_terminates() {
        let (p, db) = setup("e(a,b). e(b,c). e(c,a).");
        let e = p.pred_by_name("e").unwrap();
        let mut ev = ImageEval::base_only(&db);
        let a = p
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let img = ev.image_of(&Expr::star(Expr::Sym(e)), a);
        assert_eq!(img.len(), 3);
    }

    #[test]
    fn inverse_image() {
        let (p, db) = setup("e(a,b). e(c,b).");
        let e = p.pred_by_name("e").unwrap();
        let mut ev = ImageEval::base_only(&db);
        let b = p
            .consts
            .get(&rq_common::ConstValue::Str("b".into()))
            .unwrap();
        let img = ev.image_of(&Expr::Inv(e), b);
        assert_eq!(img.len(), 2); // {a, c}
    }

    #[test]
    fn union_image() {
        let (p, db) = setup("e(a,b). f(a,c).");
        let e = p.pred_by_name("e").unwrap();
        let f = p.pred_by_name("f").unwrap();
        let mut ev = ImageEval::base_only(&db);
        let a = p
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let img = ev.image_of(&Expr::union([Expr::Sym(e), Expr::Sym(f)]), a);
        assert_eq!(img.len(), 2);
    }

    #[test]
    fn derived_through_system_matches_datalog() {
        // sg via the equation system vs naive Datalog evaluation.
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). up(b,b1). up(b1,b2).\n\
                   flat(a2,b2). flat(a1,b1).\n\
                   down(b2,b1). down(b1,b).";
        let p = parse_program(src).unwrap();
        let db = Database::from_program(&p);
        let sys = crate::lemma1::lemma1(&p, &crate::lemma1::Lemma1Options::default())
            .unwrap()
            .system;
        let sg = p.pred_by_name("sg").unwrap();
        let mut ev = ImageEval::with_system(&db, &sys);
        let pairs = ev.derived_pairs(sg).clone();
        let naive = rq_datalog::naive_eval(&p).unwrap();
        let expected: FxHashSet<(Const, Const)> =
            naive.tuples(sg).into_iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn image_query_through_derived_pred() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). flat(a1,b1). down(b1,b). flat(a,z).";
        let p = parse_program(src).unwrap();
        let db = Database::from_program(&p);
        let sys = crate::lemma1::lemma1(&p, &crate::lemma1::Lemma1Options::default())
            .unwrap()
            .system;
        let sg = p.pred_by_name("sg").unwrap();
        let mut ev = ImageEval::with_system(&db, &sys);
        let a = p
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let img = ev.image_of(&Expr::Sym(sg), a);
        // sg(a, z) via flat; sg(a, b) via up·sg·down.
        assert_eq!(img.len(), 2);
    }
}
