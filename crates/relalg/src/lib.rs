//! Binary-relational expressions and equation systems — §3 of the paper
//! up to (but not including) the automaton construction.
//!
//! * [`mod@expr`] — expressions over ∪ (union), · (composition), * (reflexive
//!   transitive closure), and inverse;
//! * [`mod@system`] — equation systems `p = e_p` with recursion analysis;
//! * [`mod@lemma1`] — the Lemma 1 transformation from a linear binary-chain
//!   program to such a system (Arden elimination, substitution,
//!   distribution);
//! * [`mod@unroll`] — the `p_i` unrolling of Lemma 2 and the Horner-vs-flat
//!   size comparison;
//! * [`mod@image`] — slow set-based image evaluation used as an oracle;
//! * [`mod@parse`] — a parser for the textual expression form (the
//!   inverse of display).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod image;
pub mod lemma1;
pub mod parse;
pub mod system;
pub mod unroll;

pub use expr::Expr;
pub use image::ImageEval;
pub use lemma1::{
    check_statements_3_4, initial_system, lemma1, lemma1_from_system, Lemma1Error, Lemma1Options,
    Lemma1Output,
};
pub use parse::{parse_expr, ExprParseError};
pub use system::{EqSystem, RecursionInfo};
pub use unroll::{flattened_linear, linear_decomposition, unroll, unroll_level};
