//! The paper's unrolling expressions `p_i` (§3, Lemma 2) and the
//! comparison with the flattened form `p'_i`.
//!
//! For a derived predicate `p` with equation `p = e_p`:
//!
//! * `p_0 = ∅`, and `p_i` is `e_p` with every derived `r` replaced by
//!   `r_{i-1}` — Horner's rule applied to relational polynomials;
//! * for the same-generation equation `sg = flat ∪ up·sg·down`, the
//!   equivalent flattened expression is
//!   `sg'_i = flat ∪ up·flat·down ∪ up²·flat·down² ∪ … ∪ upⁱ·flat·downⁱ`,
//!   which the paper notes is larger than `sg_i` by a factor of `i`
//!   (experiment E6 measures exactly that ratio).

use crate::expr::Expr;
use crate::system::EqSystem;
use rq_common::FxHashMap;
use rq_common::Pred;

/// Compute `p_i` for every derived predicate, returning the map for
/// level `i`.  Level 0 maps everything to `∅`.
pub fn unroll_level(system: &EqSystem, i: usize) -> FxHashMap<Pred, Expr> {
    let mut cur: FxHashMap<Pred, Expr> = system.lhs.iter().map(|&p| (p, Expr::Empty)).collect();
    for _ in 0..i {
        let mut next = FxHashMap::default();
        for &p in &system.lhs {
            let mut e = system.rhs[&p].clone();
            for &r in &system.lhs {
                if e.contains(r) {
                    e = e.substitute(r, &cur[&r]);
                }
            }
            next.insert(p, e);
        }
        cur = next;
    }
    cur
}

/// `p_i` for a single predicate.
pub fn unroll(system: &EqSystem, p: Pred, i: usize) -> Expr {
    unroll_level(system, i)
        .remove(&p)
        .expect("p is a derived predicate of the system")
}

/// The flattened same-generation expression
/// `e0 ∪ e1·e0·e2 ∪ e1²·e0·e2² ∪ … ∪ e1ⁱ·e0·e2ⁱ` for an equation of the
/// shape `p = e0 ∪ e1·p·e2` (what the paper calls `sg'_i`).
pub fn flattened_linear(e0: &Expr, e1: &Expr, e2: &Expr, i: usize) -> Expr {
    let mut alts = Vec::with_capacity(i + 1);
    for k in 0..=i {
        let mut factors = Vec::with_capacity(2 * k + 1);
        for _ in 0..k {
            factors.push(e1.clone());
        }
        factors.push(e0.clone());
        for _ in 0..k {
            factors.push(e2.clone());
        }
        alts.push(Expr::cat(factors));
    }
    Expr::union(alts)
}

/// Decompose an equation right-hand side of the shape `e0 ∪ e1·p·e2`
/// (the linear case of Theorem 4).  Returns `(e0, e1, e2)` if the shape
/// matches with `e0`, `e1`, `e2` free of `p`; `e1`/`e2` may be `id`.
pub fn linear_decomposition(p: Pred, e: &Expr) -> Option<(Expr, Expr, Expr)> {
    let mut e0s = Vec::new();
    let mut rec: Option<(Expr, Expr)> = None;
    for alt in e.alternatives() {
        if !alt.contains(p) {
            e0s.push(alt);
            continue;
        }
        if rec.is_some() || alt.count_occurrences(p) != 1 {
            return None;
        }
        let fs = alt.factors();
        let pos = fs.iter().position(|f| *f == Expr::Sym(p))?;
        let e1 = Expr::cat(fs[..pos].iter().cloned());
        let e2 = Expr::cat(fs[pos + 1..].iter().cloned());
        if e1.contains(p) || e2.contains(p) {
            return None;
        }
        rec = Some((e1, e2));
    }
    let (e1, e2) = rec?;
    Some((Expr::union(e0s), e1, e2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    fn sg_system() -> (rq_datalog::Program, EqSystem, Pred) {
        let p = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             flat(a,b).",
        )
        .unwrap();
        let sys = crate::lemma1::initial_system(&p).unwrap();
        let sg = p.pred_by_name("sg").unwrap();
        (p, sys, sg)
    }

    #[test]
    fn sg_unroll_matches_paper() {
        let (p, sys, sg) = sg_system();
        let nm = |q: Pred| p.pred_name(q).to_string();
        // sg_1 = flat (up·∅·down collapses).
        assert_eq!(unroll(&sys, sg, 1).display(&nm), "flat");
        // sg_2 = flat ∪ up·flat·down.
        assert_eq!(unroll(&sys, sg, 2).display(&nm), "flat U up.flat.down");
        // sg_3 = flat ∪ up·(flat ∪ up·flat·down)·down — the paper's
        // Horner form (our union dedup keeps it verbatim).
        assert_eq!(
            unroll(&sys, sg, 3).display(&nm),
            "flat U up.(flat U up.flat.down).down"
        );
    }

    #[test]
    fn unroll_level_zero_is_empty() {
        let (_, sys, sg) = sg_system();
        assert_eq!(unroll(&sys, sg, 0), Expr::Empty);
    }

    #[test]
    fn horner_size_is_linear_flattened_quadratic() {
        let (p, sys, sg) = sg_system();
        let (e0, e1, e2) = linear_decomposition(sg, &sys.rhs[&sg]).unwrap();
        let nm = |q: Pred| p.pred_name(q).to_string();
        assert_eq!(e0.display(&nm), "flat");
        assert_eq!(e1.display(&nm), "up");
        assert_eq!(e2.display(&nm), "down");
        for i in [4usize, 8, 16] {
            let horner = unroll(&sys, sg, i).occurrence_count();
            let flat = flattened_linear(&e0, &e1, &e2, i - 1).occurrence_count();
            // Horner: 3 symbols per level → 3i-2 occurrences (last level
            // contributes only flat).  Flattened: Σ(2k+1) = i².
            assert_eq!(horner, 3 * i - 2);
            assert_eq!(flat, i * i);
        }
    }

    #[test]
    fn linear_decomposition_rejects_nonlinear() {
        let (_, _, _) = sg_system();
        let p0 = Pred(0);
        // p = p·p has two occurrences.
        let e = Expr::cat([Expr::Sym(p0), Expr::Sym(p0)]);
        assert!(linear_decomposition(p0, &e).is_none());
        // Two recursive alternatives.
        let e = Expr::union([
            Expr::cat([Expr::Sym(Pred(1)), Expr::Sym(p0)]),
            Expr::cat([Expr::Sym(p0), Expr::Sym(Pred(2))]),
        ]);
        assert!(linear_decomposition(p0, &e).is_none());
    }

    #[test]
    fn linear_decomposition_right_linear() {
        // tc = e ∪ e·tc: e1 = e, e2 = id.
        let tc = Pred(0);
        let e = Pred(1);
        let rhs = Expr::union([Expr::Sym(e), Expr::cat([Expr::Sym(e), Expr::Sym(tc)])]);
        let (e0, e1, e2) = linear_decomposition(tc, &rhs).unwrap();
        assert_eq!(e0, Expr::Sym(e));
        assert_eq!(e1, Expr::Sym(e));
        assert_eq!(e2, Expr::Id);
    }
}
