//! A parser for the textual form of binary-relational expressions, the
//! inverse of [`Expr::display`]:
//!
//! ```text
//! expr   ::= term ("U" term)*            union, loosest
//! term   ::= factor ("." factor)*        composition
//! factor ::= primary ("*" | "^-1")*      postfix star / inverse
//! primary::= "0" | "id" | NAME | "(" expr ")"
//! ```
//!
//! Predicate names resolve through a caller-supplied function, so parsed
//! expressions share ids with an existing program.

use crate::expr::Expr;
use rq_common::Pred;
use std::fmt;

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprParseError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression parse error at byte {}: {}",
            self.pos, self.msg
        )
    }
}

impl std::error::Error for ExprParseError {}

struct Parser<'a, F> {
    src: &'a [u8],
    pos: usize,
    resolve: F,
}

impl<'a, F: FnMut(&str) -> Pred> Parser<'a, F> {
    fn error(&self, msg: impl Into<String>) -> ExprParseError {
        ExprParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.src.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `U` separates alternatives only when it stands alone (so that a
    /// predicate named `Up` or `U2` is not cut in half).
    fn eat_union(&mut self) -> bool {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&b'U') {
            let next = self.src.get(self.pos + 1);
            let standalone = match next {
                None => true,
                Some(c) => !(c.is_ascii_alphanumeric() || *c == b'_'),
            };
            if standalone {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expr(&mut self) -> Result<Expr, ExprParseError> {
        let mut parts = vec![self.term()?];
        while self.eat_union() {
            parts.push(self.term()?);
        }
        Ok(Expr::union(parts))
    }

    fn term(&mut self) -> Result<Expr, ExprParseError> {
        let mut parts = vec![self.factor()?];
        while self.eat(b'.') {
            parts.push(self.factor()?);
        }
        Ok(Expr::cat(parts))
    }

    fn factor(&mut self) -> Result<Expr, ExprParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(b'*') {
                e = Expr::star(e);
            } else if self.peek() == Some(b'^') {
                let rest = &self.src[self.pos..];
                if rest.starts_with(b"^-1") {
                    self.pos += 3;
                    e = e.inverse();
                } else {
                    return Err(self.error("expected `^-1`"));
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, ExprParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                if !self.eat(b')') {
                    return Err(self.error("expected `)`"));
                }
                Ok(e)
            }
            Some(b'0') => {
                self.pos += 1;
                Ok(Expr::Empty)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self
                    .src
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_' || *c == b'-')
                {
                    self.pos += 1;
                }
                let name = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii checked");
                if name == "id" {
                    Ok(Expr::Id)
                } else {
                    Ok(Expr::Sym((self.resolve)(name)))
                }
            }
            Some(other) => Err(self.error(format!("unexpected `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }
}

/// Parse an expression, resolving predicate names through `resolve`.
pub fn parse_expr(src: &str, resolve: impl FnMut(&str) -> Pred) -> Result<Expr, ExprParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        resolve,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != src.len() {
        return Err(p.error("trailing input"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::{FxHashMap, NameInterner};

    fn parse(src: &str) -> (Expr, NameInterner) {
        let mut names = NameInterner::new();
        let mut ids: FxHashMap<String, Pred> = FxHashMap::default();
        let e = parse_expr(src, |name| {
            let idx = names.intern(name);
            *ids.entry(name.to_string()).or_insert(Pred(idx))
        })
        .unwrap();
        (e, names)
    }

    fn roundtrip(src: &str) {
        let (e, names) = parse(src);
        let shown = e.display(&|p: Pred| names.name(p.0).to_string());
        assert_eq!(shown, src, "display(parse({src}))");
        // And parsing the display is a fixpoint.
        let (e2, names2) = parse(&shown);
        assert_eq!(e2.display(&|p: Pred| names2.name(p.0).to_string()), shown);
    }

    #[test]
    fn roundtrips() {
        roundtrip("flat U up.sg.down");
        roundtrip("(b3.b4* U b2.p).b1");
        roundtrip("e*.e");
        roundtrip("(d.e)*.(c.p1 U d.a)");
        roundtrip("b.c*.c U a.q2.b.c*");
        roundtrip("id");
        roundtrip("0");
        roundtrip("up^-1");
        // `(a.b)^-1` normalizes at construction, so the fixpoint is the
        // distributed form.
        roundtrip("b^-1.a^-1.c");
        let (e, names) = parse("(a.b)^-1.c");
        assert_eq!(
            e.display(&|p: Pred| names.name(p.0).to_string()),
            "b^-1.a^-1.c"
        );
    }

    #[test]
    fn inverse_applies_to_factor() {
        let (e, names) = parse("(a.b)^-1");
        let shown = e.display(&|p: Pred| names.name(p.0).to_string());
        // The inverse distributes at construction time.
        assert_eq!(shown, "b^-1.a^-1");
    }

    #[test]
    fn union_token_does_not_split_names() {
        let (e, names) = parse("Up U U2");
        let shown = e.display(&|p: Pred| names.name(p.0).to_string());
        assert_eq!(shown, "Up U U2");
        assert_eq!(e.alternatives().len(), 2);
    }

    #[test]
    fn star_of_parenthesized_union() {
        let (e, _) = parse("(a U b)*");
        assert!(matches!(e, Expr::Star(_)));
    }

    #[test]
    fn empty_annihilates() {
        let (e, _) = parse("a.0.b");
        assert_eq!(e, Expr::Empty);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_expr("a U ", |_| Pred(0)).unwrap_err();
        assert!(err.pos >= 3);
        assert!(parse_expr("a )", |_| Pred(0)).is_err());
        assert!(parse_expr("(a", |_| Pred(0)).is_err());
        assert!(parse_expr("a ^- b", |_| Pred(0)).is_err());
    }

    #[test]
    fn parses_against_program_ids() {
        let program = rq_datalog::parse_program(
            "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\nflat(a,b).",
        )
        .unwrap();
        let e = parse_expr("flat U up.sg.down", |name| {
            program.pred_by_name(name).expect("known predicate")
        })
        .unwrap();
        let sys = crate::lemma1::initial_system(&program).unwrap();
        let sg = program.pred_by_name("sg").unwrap();
        assert_eq!(&e, sys.get(sg));
    }
}
