//! Systems of equations `p = e_p` over binary-relational expressions —
//! the intermediate form Lemma 1 produces from a linear binary-chain
//! program and the form the traversal engine consumes.

use crate::expr::Expr;
use rq_common::{FxHashMap, FxHashSet, Pred};
use rq_datalog::{tarjan_scc, Program};

/// An equation system: one right-hand side per derived predicate.
#[derive(Clone, Debug, PartialEq)]
pub struct EqSystem {
    /// Left-hand sides, in a stable order (the program's rule order).
    pub lhs: Vec<Pred>,
    /// Right-hand side per left-hand side.
    pub rhs: FxHashMap<Pred, Expr>,
}

impl EqSystem {
    /// Build from `(p, e)` pairs.
    pub fn new(equations: impl IntoIterator<Item = (Pred, Expr)>) -> Self {
        let mut lhs = Vec::new();
        let mut rhs = FxHashMap::default();
        for (p, e) in equations {
            if rhs.insert(p, e).is_none() {
                lhs.push(p);
            }
        }
        Self { lhs, rhs }
    }

    /// The set of derived predicates (the left-hand sides).
    pub fn derived(&self) -> FxHashSet<Pred> {
        self.lhs.iter().copied().collect()
    }

    /// The right-hand side for `p`.
    pub fn get(&self, p: Pred) -> &Expr {
        &self.rhs[&p]
    }

    /// Replace the right-hand side for `p`.
    pub fn set(&mut self, p: Pred, e: Expr) {
        debug_assert!(self.rhs.contains_key(&p));
        self.rhs.insert(p, e);
    }

    /// Whether any right-hand side still mentions a derived predicate.
    pub fn has_derived_occurrences(&self) -> bool {
        let derived = self.derived();
        self.lhs.iter().any(|p| self.rhs[p].contains_any(&derived))
    }

    /// The sets of mutually recursive predicates in the *current* system
    /// (steps 2 and 6 of Lemma 1): SCCs of the graph with an arc `p → q`
    /// whenever `e_p` mentions derived `q`.  Returns `(component id per
    /// lhs, members per component, recursive flags)`; a predicate is
    /// recursive iff its component has ≥ 2 members or its equation
    /// mentions itself.
    pub fn recursion_info(&self) -> RecursionInfo {
        let derived = self.derived();
        let index: FxHashMap<Pred, usize> =
            self.lhs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); self.lhs.len()];
        for (i, &p) in self.lhs.iter().enumerate() {
            let mut syms = FxHashSet::default();
            self.rhs[&p].symbols(&mut syms);
            for q in syms {
                if derived.contains(&q) {
                    succ[i].push(index[&q]);
                }
            }
        }
        let (comp, ncomps) = tarjan_scc(&succ);
        let mut members: Vec<Vec<Pred>> = vec![Vec::new(); ncomps];
        for (i, &c) in comp.iter().enumerate() {
            members[c].push(self.lhs[i]);
        }
        let recursive: FxHashSet<Pred> = self
            .lhs
            .iter()
            .enumerate()
            .filter(|(i, p)| members[comp[*i]].len() > 1 || self.rhs[p].contains(**p))
            .map(|(_, &p)| p)
            .collect();
        RecursionInfo {
            comp: self
                .lhs
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, comp[i]))
                .collect(),
            members,
            recursive,
        }
    }

    /// Restrict the system to the equations reachable from `root` through
    /// derived-predicate occurrences.  The engine evaluates only this
    /// slice.
    pub fn reachable_from(&self, root: Pred) -> EqSystem {
        let derived = self.derived();
        let mut keep: FxHashSet<Pred> = FxHashSet::default();
        let mut stack = vec![root];
        while let Some(p) = stack.pop() {
            if !derived.contains(&p) || !keep.insert(p) {
                continue;
            }
            let mut syms = FxHashSet::default();
            self.rhs[&p].symbols(&mut syms);
            for q in syms {
                if derived.contains(&q) {
                    stack.push(q);
                }
            }
        }
        EqSystem::new(
            self.lhs
                .iter()
                .filter(|p| keep.contains(p))
                .map(|&p| (p, self.rhs[&p].clone())),
        )
    }

    /// Every symbol an evaluation rooted at `root` can consult: the
    /// symbols of all equations reachable from `root` through derived
    /// occurrences (derived predicates included).  This is the
    /// cache-invalidation footprint serving layers key on — an update
    /// that touches none of these predicates cannot change any answer
    /// of a `root` query.
    pub fn read_set(&self, root: Pred) -> FxHashSet<Pred> {
        let derived = self.derived();
        let mut all = FxHashSet::default();
        let mut seen = FxHashSet::default();
        let mut stack = vec![root];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            if let Some(e) = self.rhs.get(&p) {
                let mut syms = FxHashSet::default();
                e.symbols(&mut syms);
                for q in syms {
                    if derived.contains(&q) {
                        stack.push(q);
                    }
                    all.insert(q);
                }
            }
        }
        all
    }

    /// Render the system, one `p = e` line per equation, in lhs order.
    pub fn display(&self, program: &Program) -> String {
        let name = |p: Pred| program.pred_name(p).to_string();
        let mut out = String::new();
        for &p in &self.lhs {
            out.push_str(&format!("{} = {}\n", name(p), self.rhs[&p].display(&name)));
        }
        out
    }
}

/// Mutual-recursion structure of an equation system.
#[derive(Clone, Debug)]
pub struct RecursionInfo {
    /// Component id per predicate.
    pub comp: FxHashMap<Pred, usize>,
    /// Members per component.
    pub members: Vec<Vec<Pred>>,
    /// Predicates on a cycle.
    pub recursive: FxHashSet<Pred>,
}

impl RecursionInfo {
    /// Whether `p` and `q` are mutually recursive in this system.
    pub fn mutually_recursive(&self, p: Pred, q: Pred) -> bool {
        if p == q {
            return self.recursive.contains(&p);
        }
        match (self.comp.get(&p), self.comp.get(&q)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// The maximal mutually-recursive set containing `p` (singletons only
    /// if `p` is self-recursive).
    pub fn clique(&self, p: Pred) -> Vec<Pred> {
        match self.comp.get(&p) {
            Some(&c) if self.members[c].len() > 1 || self.recursive.contains(&p) => {
                self.members[c].clone()
            }
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Expr {
        Expr::Sym(Pred(i))
    }

    #[test]
    fn recursion_info_detects_cycles() {
        // p0 = b ∪ p1·b ; p1 = p0·b ; p2 = b  (b = Pred(10), base)
        let sys = EqSystem::new([
            (Pred(0), Expr::union([s(10), Expr::cat([s(1), s(10)])])),
            (Pred(1), Expr::cat([s(0), s(10)])),
            (Pred(2), s(10)),
        ]);
        let info = sys.recursion_info();
        assert!(info.mutually_recursive(Pred(0), Pred(1)));
        assert!(info.recursive.contains(&Pred(0)));
        assert!(!info.recursive.contains(&Pred(2)));
        assert!(!info.mutually_recursive(Pred(0), Pred(2)));
        assert_eq!(info.clique(Pred(0)).len(), 2);
        assert!(info.clique(Pred(2)).is_empty());
    }

    #[test]
    fn self_recursion_via_own_equation() {
        let sys = EqSystem::new([(Pred(0), Expr::cat([s(5), s(0)]))]);
        let info = sys.recursion_info();
        assert!(info.recursive.contains(&Pred(0)));
        assert!(info.mutually_recursive(Pred(0), Pred(0)));
    }

    #[test]
    fn reachable_slice() {
        let sys = EqSystem::new([
            (Pred(0), Expr::cat([s(10), s(1)])),
            (Pred(1), s(11)),
            (Pred(2), s(12)),
        ]);
        let slice = sys.reachable_from(Pred(0));
        assert_eq!(slice.lhs.len(), 2);
        assert!(slice.rhs.contains_key(&Pred(0)));
        assert!(slice.rhs.contains_key(&Pred(1)));
        assert!(!slice.rhs.contains_key(&Pred(2)));
    }

    #[test]
    fn read_set_follows_derived_occurrences() {
        // p0 reads {10, p1, 11} through p1; p2's symbols are invisible.
        let sys = EqSystem::new([
            (Pred(0), Expr::cat([s(10), s(1)])),
            (Pred(1), s(11)),
            (Pred(2), s(12)),
        ]);
        let rs = sys.read_set(Pred(0));
        assert!(rs.contains(&Pred(10)) && rs.contains(&Pred(11)) && rs.contains(&Pred(1)));
        assert!(!rs.contains(&Pred(12)));
        // A base root reads nothing (no equation).
        assert!(sys.read_set(Pred(12)).is_empty());
    }

    #[test]
    fn has_derived_occurrences() {
        let sys = EqSystem::new([(Pred(0), s(10)), (Pred(1), Expr::cat([s(10), s(0)]))]);
        assert!(sys.has_derived_occurrences());
        let sys2 = EqSystem::new([(Pred(0), s(10))]);
        assert!(!sys2.has_derived_occurrences());
    }
}
