//! Binary-relational expressions over the operators the paper calls
//! "natural": `∪` (union), `·` (composition), `*` (reflexive transitive
//! closure) — plus inverse, which §3 needs to evaluate `p(X,b)` queries
//! ("simply apply the algorithm to the query r(b,Y), where r is the
//! inverse of p").
//!
//! Expressions are kept in a light normal form by the smart constructors:
//! unions and compositions are flattened and the unit/zero laws
//! (`e ∪ ∅ = e`, `e·id = e`, `∅·e = ∅`, `∅* = id* = id`, `(e*)* = e*`)
//! are applied on construction.  Anything stronger (e.g. distribution)
//! is applied explicitly by the Lemma 1 steps that need it.

use rq_common::{FxHashSet, Pred};

/// A binary-relational expression.  Leaves are predicate symbols; whether
/// a symbol is base or derived is a property of the surrounding
/// [`crate::system::EqSystem`], not of the expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// The empty relation `∅`.
    Empty,
    /// The identity relation `id`.
    Id,
    /// A predicate symbol.
    Sym(Pred),
    /// The inverse of a predicate symbol.
    Inv(Pred),
    /// Union of two or more alternatives.
    Union(Vec<Expr>),
    /// Composition of two or more factors, left to right.
    Cat(Vec<Expr>),
    /// Reflexive transitive closure.
    Star(Box<Expr>),
}

impl Expr {
    /// Smart union: flattens, drops `∅`, deduplicates syntactically equal
    /// alternatives, collapses to the single alternative when possible.
    pub fn union(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out: Vec<Expr> = Vec::new();
        let mut seen: FxHashSet<Expr> = FxHashSet::default();
        for p in parts {
            match p {
                Expr::Empty => {}
                Expr::Union(inner) => {
                    for q in inner {
                        if seen.insert(q.clone()) {
                            out.push(q);
                        }
                    }
                }
                other => {
                    if seen.insert(other.clone()) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Expr::Empty,
            1 => out.pop().expect("len checked"),
            _ => Expr::Union(out),
        }
    }

    /// Smart composition: flattens, drops `id`, annihilates on `∅`.
    pub fn cat(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out: Vec<Expr> = Vec::new();
        for p in parts {
            match p {
                Expr::Id => {}
                Expr::Empty => return Expr::Empty,
                Expr::Cat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::Id,
            1 => out.pop().expect("len checked"),
            _ => Expr::Cat(out),
        }
    }

    /// Smart star: `∅* = id* = id`, `(e*)* = e*`.
    pub fn star(e: Expr) -> Expr {
        match e {
            Expr::Empty | Expr::Id => Expr::Id,
            s @ Expr::Star(_) => s,
            other => Expr::Star(Box::new(other)),
        }
    }

    /// Convenience: a predicate leaf.
    pub fn sym(p: Pred) -> Expr {
        Expr::Sym(p)
    }

    /// Whether `p` occurs anywhere in the expression (as `Sym` or `Inv`).
    pub fn contains(&self, p: Pred) -> bool {
        match self {
            Expr::Empty | Expr::Id => false,
            Expr::Sym(q) | Expr::Inv(q) => *q == p,
            Expr::Union(parts) | Expr::Cat(parts) => parts.iter().any(|e| e.contains(p)),
            Expr::Star(inner) => inner.contains(p),
        }
    }

    /// Whether any of the given predicates occurs.
    pub fn contains_any(&self, preds: &FxHashSet<Pred>) -> bool {
        match self {
            Expr::Empty | Expr::Id => false,
            Expr::Sym(q) | Expr::Inv(q) => preds.contains(q),
            Expr::Union(parts) | Expr::Cat(parts) => parts.iter().any(|e| e.contains_any(preds)),
            Expr::Star(inner) => inner.contains_any(preds),
        }
    }

    /// Collect every predicate symbol occurring in the expression.
    pub fn symbols(&self, out: &mut FxHashSet<Pred>) {
        match self {
            Expr::Empty | Expr::Id => {}
            Expr::Sym(q) | Expr::Inv(q) => {
                out.insert(*q);
            }
            Expr::Union(parts) | Expr::Cat(parts) => {
                for e in parts {
                    e.symbols(out);
                }
            }
            Expr::Star(inner) => inner.symbols(out),
        }
    }

    /// Number of occurrences of `p`.
    pub fn count_occurrences(&self, p: Pred) -> usize {
        match self {
            Expr::Empty | Expr::Id => 0,
            Expr::Sym(q) | Expr::Inv(q) => usize::from(*q == p),
            Expr::Union(parts) | Expr::Cat(parts) => {
                parts.iter().map(|e| e.count_occurrences(p)).sum()
            }
            Expr::Star(inner) => inner.count_occurrences(p),
        }
    }

    /// Total number of predicate-symbol occurrences.  The paper measures
    /// expression size as the total number of tuples across occurrences;
    /// with all argument relations the same size this is proportional to
    /// the occurrence count (see [`Expr::weighted_size`]).
    pub fn occurrence_count(&self) -> usize {
        match self {
            Expr::Empty | Expr::Id => 0,
            Expr::Sym(_) | Expr::Inv(_) => 1,
            Expr::Union(parts) | Expr::Cat(parts) => parts.iter().map(Expr::occurrence_count).sum(),
            Expr::Star(inner) => inner.occurrence_count(),
        }
    }

    /// The paper's size measure: total tuples over all occurrences of
    /// argument relations ("different occurrences of the same relation
    /// are considered different relations").
    pub fn weighted_size(&self, tuples_of: &impl Fn(Pred) -> usize) -> usize {
        match self {
            Expr::Empty | Expr::Id => 0,
            Expr::Sym(q) | Expr::Inv(q) => tuples_of(*q),
            Expr::Union(parts) | Expr::Cat(parts) => {
                parts.iter().map(|e| e.weighted_size(tuples_of)).sum()
            }
            Expr::Star(inner) => inner.weighted_size(tuples_of),
        }
    }

    /// Substitute `replacement` for every occurrence of `Sym(p)`; an
    /// occurrence of `Inv(p)` becomes the inverse of the replacement.
    /// Rebuilds with the smart constructors, so unit laws re-apply.
    pub fn substitute(&self, p: Pred, replacement: &Expr) -> Expr {
        match self {
            Expr::Empty => Expr::Empty,
            Expr::Id => Expr::Id,
            Expr::Sym(q) => {
                if *q == p {
                    replacement.clone()
                } else {
                    Expr::Sym(*q)
                }
            }
            Expr::Inv(q) => {
                if *q == p {
                    replacement.inverse()
                } else {
                    Expr::Inv(*q)
                }
            }
            Expr::Union(parts) => Expr::union(parts.iter().map(|e| e.substitute(p, replacement))),
            Expr::Cat(parts) => Expr::cat(parts.iter().map(|e| e.substitute(p, replacement))),
            Expr::Star(inner) => Expr::star(inner.substitute(p, replacement)),
        }
    }

    /// The inverse expression: `(e1·e2)⁻¹ = e2⁻¹·e1⁻¹`,
    /// `(e1 ∪ e2)⁻¹ = e1⁻¹ ∪ e2⁻¹`, `(e*)⁻¹ = (e⁻¹)*`, `id⁻¹ = id`,
    /// `(p⁻¹)⁻¹ = p`.
    pub fn inverse(&self) -> Expr {
        match self {
            Expr::Empty => Expr::Empty,
            Expr::Id => Expr::Id,
            Expr::Sym(p) => Expr::Inv(*p),
            Expr::Inv(p) => Expr::Sym(*p),
            Expr::Union(parts) => Expr::union(parts.iter().map(Expr::inverse)),
            Expr::Cat(parts) => Expr::cat(parts.iter().rev().map(Expr::inverse)),
            Expr::Star(inner) => Expr::star(inner.inverse()),
        }
    }

    /// The alternatives of the expression seen as a union (a non-union is
    /// a single alternative).
    pub fn alternatives(&self) -> Vec<Expr> {
        match self {
            Expr::Union(parts) => parts.clone(),
            Expr::Empty => vec![],
            other => vec![other.clone()],
        }
    }

    /// The factors of the expression seen as a composition.
    pub fn factors(&self) -> Vec<Expr> {
        match self {
            Expr::Cat(parts) => parts.clone(),
            Expr::Id => vec![],
            other => vec![other.clone()],
        }
    }

    /// Render with a predicate-name resolver.  Union binds loosest
    /// (`U`), composition next (`.`), star/inverse tightest.
    pub fn display(&self, name: &impl Fn(Pred) -> String) -> String {
        self.display_prec(name, 0)
    }

    fn display_prec(&self, name: &impl Fn(Pred) -> String, prec: u8) -> String {
        match self {
            Expr::Empty => "0".to_string(),
            Expr::Id => "id".to_string(),
            Expr::Sym(p) => name(*p),
            Expr::Inv(p) => format!("{}^-1", name(*p)),
            Expr::Union(parts) => {
                let inner: Vec<String> = parts.iter().map(|e| e.display_prec(name, 1)).collect();
                let s = inner.join(" U ");
                if prec > 0 {
                    format!("({s})")
                } else {
                    s
                }
            }
            Expr::Cat(parts) => {
                let inner: Vec<String> = parts.iter().map(|e| e.display_prec(name, 2)).collect();
                let s = inner.join(".");
                if prec > 1 {
                    format!("({s})")
                } else {
                    s
                }
            }
            Expr::Star(inner) => match **inner {
                Expr::Sym(_) | Expr::Inv(_) | Expr::Empty | Expr::Id => {
                    format!("{}*", inner.display_prec(name, 3))
                }
                _ => format!("({})*", inner.display_prec(name, 0)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Expr {
        Expr::Sym(Pred(i))
    }

    fn names(pr: Pred) -> String {
        format!("b{}", pr.0)
    }

    #[test]
    fn union_drops_empty_and_flattens() {
        let e = Expr::union([Expr::Empty, p(1), Expr::union([p(2), p(3)])]);
        assert_eq!(e, Expr::Union(vec![p(1), p(2), p(3)]));
        assert_eq!(Expr::union([Expr::Empty, Expr::Empty]), Expr::Empty);
        assert_eq!(Expr::union([p(1)]), p(1));
    }

    #[test]
    fn union_dedups() {
        let e = Expr::union([p(1), p(2), p(1)]);
        assert_eq!(e, Expr::Union(vec![p(1), p(2)]));
    }

    #[test]
    fn cat_unit_and_zero_laws() {
        assert_eq!(
            Expr::cat([p(1), Expr::Id, p(2)]),
            Expr::Cat(vec![p(1), p(2)])
        );
        assert_eq!(Expr::cat([p(1), Expr::Empty, p(2)]), Expr::Empty);
        assert_eq!(Expr::cat([Expr::Id, Expr::Id]), Expr::Id);
        assert_eq!(
            Expr::cat([Expr::cat([p(1), p(2)]), p(3)]),
            Expr::Cat(vec![p(1), p(2), p(3)])
        );
    }

    #[test]
    fn star_laws() {
        assert_eq!(Expr::star(Expr::Empty), Expr::Id);
        assert_eq!(Expr::star(Expr::Id), Expr::Id);
        let s = Expr::star(p(1));
        assert_eq!(Expr::star(s.clone()), s);
    }

    #[test]
    fn substitution_rebuilds() {
        // p1·p2 with p2 := id collapses to p1.
        let e = Expr::cat([p(1), p(2)]);
        assert_eq!(e.substitute(Pred(2), &Expr::Id), p(1));
        // p2 := ∅ annihilates.
        assert_eq!(e.substitute(Pred(2), &Expr::Empty), Expr::Empty);
    }

    #[test]
    fn substitution_through_inverse() {
        let e = Expr::Inv(Pred(1));
        let r = Expr::cat([p(2), p(3)]);
        assert_eq!(
            e.substitute(Pred(1), &r),
            Expr::Cat(vec![Expr::Inv(Pred(3)), Expr::Inv(Pred(2))])
        );
    }

    #[test]
    fn inverse_reverses_composition() {
        let e = Expr::cat([p(1), Expr::star(p(2)), p(3)]);
        let inv = e.inverse();
        assert_eq!(
            inv,
            Expr::Cat(vec![
                Expr::Inv(Pred(3)),
                Expr::Star(Box::new(Expr::Inv(Pred(2)))),
                Expr::Inv(Pred(1)),
            ])
        );
        // Involution.
        assert_eq!(inv.inverse(), e);
    }

    #[test]
    fn display_precedence() {
        // (b3·b4* ∪ b2·b5)·b1 — the shape of the paper's Figure 1 example.
        let e = Expr::cat([
            Expr::union([Expr::cat([p(3), Expr::star(p(4))]), Expr::cat([p(2), p(5)])]),
            p(1),
        ]);
        assert_eq!(e.display(&names), "(b3.b4* U b2.b5).b1");
    }

    #[test]
    fn counts_and_containment() {
        let e = Expr::cat([p(1), Expr::star(Expr::union([p(2), p(1)]))]);
        assert!(e.contains(Pred(1)));
        assert!(e.contains(Pred(2)));
        assert!(!e.contains(Pred(3)));
        assert_eq!(e.count_occurrences(Pred(1)), 2);
        assert_eq!(e.occurrence_count(), 3);
        let mut syms = FxHashSet::default();
        e.symbols(&mut syms);
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn weighted_size_counts_occurrences_separately() {
        let e = Expr::union([Expr::cat([p(1), p(2)]), p(1)]);
        let size = e.weighted_size(&|pr: Pred| if pr == Pred(1) { 10 } else { 3 });
        assert_eq!(size, 23);
    }

    #[test]
    fn alternatives_and_factors() {
        let u = Expr::union([p(1), p(2)]);
        assert_eq!(u.alternatives().len(), 2);
        assert_eq!(p(1).alternatives().len(), 1);
        assert!(Expr::Empty.alternatives().is_empty());
        let c = Expr::cat([p(1), p(2)]);
        assert_eq!(c.factors().len(), 2);
        assert!(Expr::Id.factors().is_empty());
    }
}
