//! §4's airline-connection database, scaled: `airports` airports with
//! `flights_per_airport` departures each, departing on a time grid so
//! that multi-leg connections exist.  The query asks for all connections
//! from one airport at one departure time.

use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// The connection rules of §4.
pub const CNX_RULES: &str = "\
cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n";

/// Generate a flight network.  Flights leave airport `p_i` on the hour;
/// each flight lands 90 minutes later at a random airport.  All times
/// are minutes since midnight, so `<` compares correctly.
pub fn network(airports: usize, flights_per_airport: usize, seed: u64) -> Workload {
    assert!(airports >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = String::new();
    let mut deptimes: Vec<i64> = Vec::new();
    for a in 0..airports {
        for f in 0..flights_per_airport {
            let dep = 6 * 60 + (f as i64) * 60; // 06:00, 07:00, ...
            let arr = dep + 90;
            let mut dest = rng.gen_range(0..airports - 1);
            if dest >= a {
                dest += 1; // no self-loops
            }
            writeln!(facts, "flight(p{a}, {dep}, p{dest}, {arr}).").unwrap();
            deptimes.push(dep);
        }
    }
    deptimes.sort_unstable();
    deptimes.dedup();
    for dt in deptimes {
        writeln!(facts, "is_deptime({dt}).").unwrap();
    }
    Workload {
        name: format!("flights(a={airports},f={flights_per_airport},seed={seed})"),
        program: rq_datalog::parse_program(&format!("{CNX_RULES}{facts}"))
            .expect("generated flight program parses"),
        query: "cnx(p0, 360, D, AT)".to_string(),
        expected_answers: None,
    }
}

/// Every `cnx(airport, deptime, D, AT)` query text a generated
/// [`network`] can be asked — one per (airport, scheduled departure)
/// pair.  This is the serving workload: a batch of n-ary point queries
/// with the first two positions bound, exactly §4's binding pattern.
pub fn serve_queries(airports: usize, flights_per_airport: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(airports * flights_per_airport);
    for a in 0..airports {
        for f in 0..flights_per_airport {
            let dep = 6 * 60 + (f as i64) * 60;
            out.push(format!("cnx(p{a}, {dep}, D, AT)"));
        }
    }
    out
}

/// The exact example database of §4's discussion, for tests.
pub fn paper_example() -> Workload {
    let src = format!(
        "{CNX_RULES}\
         flight(hel,540,ams,690).\n\
         flight(ams,720,cdg,810).\n\
         flight(ams,660,cdg,750).\n\
         flight(cdg,840,nce,930).\n\
         is_deptime(540). is_deptime(720). is_deptime(660). is_deptime(840).\n"
    );
    Workload {
        name: "flights(paper)".to_string(),
        program: rq_datalog::parse_program(&src).expect("parses"),
        query: "cnx(hel, 540, D, AT)".to_string(),
        expected_answers: Some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::{naive_eval, Query};

    #[test]
    fn paper_example_has_three_connections() {
        let mut w = paper_example();
        let q = Query::parse(&mut w.program, &w.query).unwrap();
        let cnx = w.program.pred_by_name("cnx").unwrap();
        let res = naive_eval(&w.program).unwrap();
        let tuples = res.tuples(cnx);
        let rows = q.answer_from_relation(&tuples);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn network_is_deterministic_and_wellformed() {
        let a = network(5, 3, 9);
        let b = network(5, 3, 9);
        assert_eq!(a.program.facts.len(), b.program.facts.len());
        // 15 flights + 3 distinct departure times.
        assert_eq!(a.program.facts.len(), 18);
        // Query evaluates without error.
        let mut w = network(4, 2, 1);
        let q = Query::parse(&mut w.program, &w.query).unwrap();
        let res = naive_eval(&w.program).unwrap();
        let cnx = w.program.pred_by_name("cnx").unwrap();
        let _ = q.answer_from_relation(&res.tuples(cnx));
    }
}
