//! The cyclic same-generation data of Figure 8: an up-cycle of length m
//! and a down-cycle of length n with a single flat arc between the
//! anchors.  When m and n have no common divisor the tuple
//! `(a_0, b_0)` needs exactly m·n recursion levels — the case that
//! defeats the natural termination condition and motivates the
//! Marchetti-Spaccamela bound.

use crate::{sg_program, Workload};
use std::fmt::Write;

/// Figure 8 with up-cycle length `m` and down-cycle length `n`.  Query
/// `sg(a0, Y)`.
pub fn cyclic(m: usize, n: usize) -> Workload {
    assert!(m >= 1 && n >= 1);
    let mut facts = String::new();
    for i in 0..m {
        writeln!(facts, "up(a{}, a{}).", i, (i + 1) % m).unwrap();
    }
    writeln!(facts, "flat(a0, b0).").unwrap();
    for i in 0..n {
        writeln!(facts, "down(b{}, b{}).", i, (i + 1) % n).unwrap();
    }
    // Answers: down^k(b0) over levels k ≡ 0 (mod m) — i.e. the residues
    // {k mod n : m | k} = multiples of gcd(m, n) in Z_n.
    let g = gcd(m, n);
    Workload {
        name: format!("fig8(m={m},n={n})"),
        program: sg_program(&facts),
        query: "sg(a0, Y)".to_string(),
        expected_answers: Some(n / g),
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The number of recursion levels needed to produce the *last* answer:
/// the largest k ≤ lcm(m,n) of the form k = m·j hitting a new residue —
/// for coprime m, n this is m·(n-1) + ... the paper's bound m·n always
/// suffices.
pub fn sufficient_levels(m: usize, n: usize) -> u64 {
    (m * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::naive_eval;

    #[test]
    fn coprime_cycles_reach_all_down_nodes() {
        for (m, n) in [(2, 3), (3, 4), (5, 3)] {
            let w = cyclic(m, n);
            let program = &w.program;
            let sg = program.pred_by_name("sg").unwrap();
            let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
            let count = naive_eval(program)
                .unwrap()
                .tuples(sg)
                .into_iter()
                .filter(|t| t[0] == a0)
                .count();
            assert_eq!(count, n, "m={m} n={n}");
            assert_eq!(w.expected_answers, Some(n));
        }
    }

    #[test]
    fn non_coprime_cycles_reach_fewer() {
        let w = cyclic(2, 4);
        let program = &w.program;
        let sg = program.pred_by_name("sg").unwrap();
        let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
        let count = naive_eval(program)
            .unwrap()
            .tuples(sg)
            .into_iter()
            .filter(|t| t[0] == a0)
            .count();
        // gcd(2,4)=2: only even residues mod 4 → 2 answers.
        assert_eq!(count, 2);
        assert_eq!(w.expected_answers, Some(2));
    }

    #[test]
    fn degenerate_cycles() {
        let w = cyclic(1, 1);
        assert_eq!(w.expected_answers, Some(1));
        assert_eq!(sufficient_levels(2, 3), 6);
    }
}
