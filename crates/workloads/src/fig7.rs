//! The three acyclic same-generation samples of Figure 7.
//!
//! The scanned figure is not legible, so the shapes are reconstructed
//! from the paper's prose analysis of "our algorithm":
//!
//! * sample (a): two iterations; the terms `b1..bn` appear at the first
//!   iteration in nodes sharing one state component; the second
//!   iteration adds a single node with term `c` — total O(n);
//! * sample (b): n iterations; terms are encountered at `i-1` distinct
//!   levels, so the graph has O(n²) nodes;
//! * sample (c): n iterations; every `a_i` and every `b_i` gives rise to
//!   a single node — total O(n); this sample separates the algorithm
//!   from Henschen–Naqvi (which re-walks the down chain every level,
//!   O(n²)).

use crate::{sg_program, Workload};
use std::fmt::Write;

/// Sample (a): a bundle.  `up(a, b_i)` for i = 1..n, `flat(b_i, d_i)`,
/// `down(d_i, c)`.  Query `sg(a, Y)`; answer `{c}`.
pub fn sample_a(n: usize) -> Workload {
    let mut facts = String::new();
    for i in 1..=n {
        writeln!(facts, "up(a, b{i}).").unwrap();
        writeln!(facts, "flat(b{i}, d{i}).").unwrap();
        writeln!(facts, "down(d{i}, c).").unwrap();
    }
    Workload {
        name: format!("fig7a(n={n})"),
        program: sg_program(&facts),
        query: "sg(a, Y)".to_string(),
        expected_answers: Some(1),
    }
}

/// Sample (b): a ladder with the down chain pointing *away* from the
/// start.  `up(a_i, a_{i+1})`, `flat(a_i, b_i)`, `down(b_i, b_{i+1})`.
/// Query `sg(a0, Y)`: the k-th recursion level answers `b_{2k}`, and the
/// descent from level k walks k fresh nodes — O(n²) total for our
/// algorithm and for counting.
pub fn sample_b(n: usize) -> Workload {
    assert!(n >= 1);
    let mut facts = String::new();
    for i in 0..n - 1 {
        writeln!(facts, "up(a{}, a{}).", i, i + 1).unwrap();
    }
    for i in 0..n {
        writeln!(facts, "flat(a{i}, b{i}).").unwrap();
    }
    for i in 0..n - 1 {
        writeln!(facts, "down(b{}, b{}).", i, i + 1).unwrap();
    }
    // Answers: b_{2k} for 0 ≤ 2k ≤ n-1 (level k uses k ups and k downs).
    let expected = n.div_ceil(2);
    Workload {
        name: format!("fig7b(n={n})"),
        program: sg_program(&facts),
        query: "sg(a0, Y)".to_string(),
        expected_answers: Some(expected),
    }
}

/// Sample (c): a ladder with the down chain pointing *back* towards the
/// start.  `up(a_i, a_{i+1})`, `flat(a_i, b_i)`, `down(b_i, b_{i-1})`.
/// Query `sg(a0, Y)`; answer `{b0}`.  Our algorithm's memoized descent
/// makes this O(n); Henschen–Naqvi re-walks the chain, O(n²).
pub fn sample_c(n: usize) -> Workload {
    assert!(n >= 1);
    let mut facts = String::new();
    for i in 0..n - 1 {
        writeln!(facts, "up(a{}, a{}).", i, i + 1).unwrap();
    }
    for i in 0..n {
        writeln!(facts, "flat(a{i}, b{i}).").unwrap();
    }
    for i in 1..n {
        writeln!(facts, "down(b{}, b{}).", i, i - 1).unwrap();
    }
    Workload {
        name: format!("fig7c(n={n})"),
        program: sg_program(&facts),
        query: "sg(a0, Y)".to_string(),
        expected_answers: Some(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::naive_eval;

    fn answers(w: &Workload, from: &str) -> usize {
        let program = &w.program;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program.consts.get(&ConstValue::Str(from.into())).unwrap();
        naive_eval(program)
            .unwrap()
            .tuples(sg)
            .into_iter()
            .filter(|t| t[0] == a)
            .count()
    }

    #[test]
    fn sample_a_answer_is_c() {
        for n in [1, 5, 20] {
            let w = sample_a(n);
            assert_eq!(answers(&w, "a"), 1, "n={n}");
        }
    }

    #[test]
    fn sample_b_answer_count() {
        for n in [1, 2, 5, 8, 9] {
            let w = sample_b(n);
            assert_eq!(answers(&w, "a0"), w.expected_answers.unwrap(), "n={n}");
        }
    }

    #[test]
    fn sample_c_answer_is_b0() {
        for n in [1, 5, 20] {
            let w = sample_c(n);
            assert_eq!(answers(&w, "a0"), 1, "n={n}");
        }
    }

    #[test]
    fn sizes_are_linear_in_n() {
        let w = sample_b(50);
        assert_eq!(w.program.facts.len(), 49 + 50 + 49);
        let w = sample_a(50);
        assert_eq!(w.program.facts.len(), 150);
    }
}
