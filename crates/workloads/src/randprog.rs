//! Random linear binary-chain programs for differential testing.
//!
//! The generators here produce *programs*, not just data: random
//! recursion structures (self-recursive predicates, mutually recursive
//! pairs, non-recursive helpers), random chain bodies, and random
//! layered extensional databases.  Differential tests run the whole
//! Lemma 1 → automata → traversal pipeline against the seminaive
//! bottom-up oracle on thousands of seeds (`tests/differential.rs`).
//!
//! Two construction invariants make the generated programs suitable:
//!
//! 1. **Shape** — every rule is a binary-chain rule with at most one
//!    body literal mutually recursive to the head, so the program is a
//!    linear binary-chain program and Lemma 1 applies.
//! 2. **Termination** — in non-regular mode every recursive body
//!    literal sits strictly between two other literals, and every base
//!    fact generated is strictly increasing (`n_i → n_j` only for
//!    `i < j`).  Each nesting level of the traversal then consumes at
//!    least one strictly increasing arc, so the iteration count is
//!    bounded by the domain size plus the non-recursive reference
//!    depth, and the main loop's natural `C = ∅` condition fires.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rq_datalog::{parse_program, Program};
use std::fmt::Write;

/// Which recursion shapes a generated program may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecursionStyle {
    /// All recursive rules are right-linear (recursive literal last) or
    /// left-linear (first), chosen per recursion group.  The generated
    /// program is a *regular* binary-chain program: Lemma 1 eliminates
    /// every derived predicate and the traversal needs one iteration.
    Regular,
    /// Recursive literals sit strictly in the middle of the body
    /// (non-empty prefix and suffix), the `sg` shape.  The program is
    /// linear but in general not regular.
    MiddleLinear,
    /// Each group flips a coin between the two shapes above.
    Mixed,
}

/// Configuration for [`random_program`].
#[derive(Debug, Clone)]
pub struct RandProgConfig {
    /// RNG seed; equal seeds give equal programs.
    pub seed: u64,
    /// Number of recursion groups (a group is one self-recursive
    /// predicate or a mutually recursive pair).
    pub groups: usize,
    /// Probability that a group is a mutually recursive pair.
    pub mutual_prob: f64,
    /// Recursion shape policy.
    pub style: RecursionStyle,
    /// Number of base predicates to draw body literals from.
    pub base_preds: usize,
    /// Rules per derived predicate (the first is always non-recursive).
    pub rules_per_pred: usize,
    /// Maximum number of literals in a rule body.
    pub max_body: usize,
    /// Probability that a non-recursive body slot references a derived
    /// predicate from an earlier group instead of a base predicate.
    pub lower_ref_prob: f64,
    /// Number of constants `n0 … n{domain-1}`.
    pub domain: usize,
    /// Facts per base relation (strictly increasing pairs).
    pub facts_per_base: usize,
    /// Allow arbitrary (possibly decreasing or reflexive) base facts.
    /// The generated data can then be cyclic, so the traversal's
    /// natural termination is *not* guaranteed — callers must bound the
    /// evaluation (`max_iterations` / `node_budget`) and can only rely
    /// on soundness (Lemma 2 statement 1), plus completeness when the
    /// run converges.
    pub cyclic: bool,
}

impl Default for RandProgConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            groups: 2,
            mutual_prob: 0.4,
            style: RecursionStyle::Mixed,
            base_preds: 3,
            rules_per_pred: 3,
            max_body: 4,
            lower_ref_prob: 0.25,
            domain: 12,
            facts_per_base: 18,
            cyclic: false,
        }
    }
}

/// A generated program together with its source text (for debugging
/// failed seeds) and the names of its derived predicates in group
/// order.
#[derive(Debug, Clone)]
pub struct RandProgram {
    /// The program source, facts included.
    pub text: String,
    /// The parsed program.
    pub program: Program,
    /// Derived predicate names, outermost group last.
    pub derived: Vec<String>,
    /// An iteration bound that certainly suffices for convergence on
    /// the generated (strictly increasing) data.
    pub iteration_bound: u64,
}

struct Gen {
    rng: StdRng,
    cfg: RandProgConfig,
    /// Derived predicate names of *earlier* groups, available as
    /// non-recursive references.
    lower: Vec<String>,
    rules: String,
}

impl Gen {
    fn base_name(&mut self) -> String {
        let i = self.rng.gen_range(0..self.cfg.base_preds);
        format!("b{i}")
    }

    /// A body literal that is not mutually recursive to the current
    /// group: a base predicate, or (sometimes) a derived predicate from
    /// an earlier group.
    fn free_slot(&mut self) -> String {
        if !self.lower.is_empty() && self.rng.gen_bool(self.cfg.lower_ref_prob) {
            let i = self.rng.gen_range(0..self.lower.len());
            self.lower[i].clone()
        } else {
            self.base_name()
        }
    }

    /// Emit `head(X0,Xn) :- l1(X0,X1), …, ln(X{n-1},Xn).` for the given
    /// chain of predicate names.
    fn emit_chain(&mut self, head: &str, body: &[String]) {
        let mut line = format!("{head}(X0,X{}) :- ", body.len());
        for (i, l) in body.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            write!(line, "{l}(X{},X{})", i, i + 1).unwrap();
        }
        line.push('.');
        writeln!(self.rules, "{line}").unwrap();
    }

    fn non_recursive_rule(&mut self, head: &str) {
        let len = self.rng.gen_range(1..=self.cfg.max_body);
        let body: Vec<String> = (0..len).map(|_| self.free_slot()).collect();
        self.emit_chain(head, &body);
    }

    /// A recursive rule whose recursive literal is `callee` (a member of
    /// the current group).  `side` is `Some(true)` for right-linear,
    /// `Some(false)` for left-linear, `None` for strictly-middle.
    fn recursive_rule(&mut self, head: &str, callee: &str, side: Option<bool>) {
        match side {
            Some(right) => {
                let extra = self.rng.gen_range(1..self.cfg.max_body.max(2));
                let mut body: Vec<String> = (0..extra).map(|_| self.free_slot()).collect();
                if right {
                    body.push(callee.to_string());
                } else {
                    body.insert(0, callee.to_string());
                }
                self.emit_chain(head, &body);
            }
            None => {
                let before = self.rng.gen_range(1..=(self.cfg.max_body - 2).max(1));
                let after = self.rng.gen_range(1..=(self.cfg.max_body - 2).max(1));
                let mut body: Vec<String> = (0..before).map(|_| self.free_slot()).collect();
                body.push(callee.to_string());
                for _ in 0..after {
                    let slot = self.free_slot();
                    body.push(slot);
                }
                self.emit_chain(head, &body);
            }
        }
    }
}

/// Generate a random linear binary-chain program with layered data.
pub fn random_program(cfg: &RandProgConfig) -> RandProgram {
    assert!(cfg.groups >= 1 && cfg.base_preds >= 1 && cfg.domain >= 2);
    assert!(
        cfg.max_body >= 3,
        "middle placement needs room for prefix and suffix"
    );
    let mut g = Gen {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg: cfg.clone(),
        lower: Vec::new(),
        rules: String::new(),
    };

    let mut derived = Vec::new();
    for group in 0..cfg.groups {
        let pair = g.rng.gen_bool(cfg.mutual_prob);
        let members: Vec<String> = if pair {
            vec![format!("p{group}a"), format!("p{group}b")]
        } else {
            vec![format!("p{group}")]
        };
        // One shape per group keeps mutually recursive pairs regular
        // when the style asks for it.
        let side = match cfg.style {
            RecursionStyle::Regular => Some(g.rng.gen_bool(0.5)),
            RecursionStyle::MiddleLinear => None,
            RecursionStyle::Mixed => {
                if g.rng.gen_bool(0.5) {
                    Some(g.rng.gen_bool(0.5))
                } else {
                    None
                }
            }
        };
        for (mi, head) in members.iter().enumerate() {
            g.non_recursive_rule(head);
            let mut recursive_rules = 0usize;
            if members.len() == 2 {
                // Each member of a pair references the other, so the
                // pair really is mutually recursive.
                let callee = members[1 - mi].clone();
                g.recursive_rule(head, &callee, side);
                recursive_rules += 1;
            }
            for _ in 1 + recursive_rules..cfg.rules_per_pred {
                // Lean towards recursion but cap it so the equation
                // systems stay readable and elimination cheap.
                if recursive_rules < 2 && g.rng.gen_bool(0.7) {
                    let i = g.rng.gen_range(0..members.len());
                    let callee = members[i].clone();
                    g.recursive_rule(head, &callee, side);
                    recursive_rules += 1;
                } else {
                    g.non_recursive_rule(head);
                }
            }
        }
        g.lower.extend(members.iter().cloned());
        derived.extend(members);
    }

    // Layered facts: only strictly increasing edges, so every base
    // relation (and hence every derivation chain) is acyclic — unless
    // `cyclic` lifts the restriction.
    let mut facts = String::new();
    for b in 0..cfg.base_preds {
        for _ in 0..cfg.facts_per_base {
            let (i, j) = if cfg.cyclic {
                (
                    g.rng.gen_range(0..cfg.domain),
                    g.rng.gen_range(0..cfg.domain),
                )
            } else {
                let i = g.rng.gen_range(0..cfg.domain - 1);
                (i, g.rng.gen_range(i + 1..cfg.domain))
            };
            writeln!(facts, "b{b}(n{i},n{j}).").unwrap();
        }
    }

    let text = format!("{}{}", g.rules, facts);
    let program = parse_program(&text).unwrap_or_else(|e| {
        panic!("generated program must parse: {e}\n{text}");
    });
    RandProgram {
        program,
        derived,
        // Each iteration past the first consumes at least one strictly
        // increasing arc or unfolds one non-recursive reference level.
        iteration_bound: (cfg.domain + 2 * cfg.groups + 4) as u64,
        text,
    }
}

/// Convenience: the default configuration at a given seed and style.
pub fn seeded(seed: u64, style: RecursionStyle) -> RandProgram {
    random_program(&RandProgConfig {
        seed,
        style,
        ..RandProgConfig::default()
    })
}

/// Configuration for [`random_nary_program`].
#[derive(Debug, Clone)]
pub struct NaryConfig {
    /// RNG seed; equal seeds give equal programs.
    pub seed: u64,
    /// Number of 3-ary derived predicates (each with one base and one
    /// recursive rule).
    pub preds: usize,
    /// Number of binary base predicates feeding the step joins.
    pub base_preds: usize,
    /// Number of graph constants `n0 … n{domain-1}`.
    pub domain: usize,
    /// Facts per base relation (strictly increasing pairs, so the
    /// recursion terminates naturally).
    pub facts_per_base: usize,
    /// Length of the grading chain `g0 → g1 → …` (the third argument).
    pub grades: usize,
}

impl Default for NaryConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            preds: 2,
            base_preds: 3,
            domain: 10,
            facts_per_base: 16,
            grades: 5,
        }
    }
}

/// A generated n-ary program plus the query texts worth asking of it.
#[derive(Debug, Clone)]
pub struct NaryProgram {
    /// The program source, facts included.
    pub text: String,
    /// The parsed program.
    pub program: Program,
    /// Derived 3-ary predicate names.
    pub derived: Vec<String>,
    /// Query texts covering the interesting binding patterns (`bff`,
    /// `ffb`, `bfb`, `bbb`, `fff`) with constants drawn from the data.
    pub queries: Vec<String>,
}

/// Generate a random 3-ary linear program in §4's chain-programmable
/// class: graded reachability predicates
///
/// ```text
/// qk(A,B,G) :- b_i(A,B), grade0(G).
/// qk(A,B,G) :- b_j(A,C), succ(G1,G), qk(C,B,G1).
/// ```
///
/// Each rule is linear with one derived literal; the before-literals of
/// every binding pattern the queries use stay disjoint from the free
/// head variables, so the adorned programs satisfy the chain condition
/// and the §4 transformation is exact.  Base facts are strictly
/// increasing (`n_i → n_j` only for `i < j`), so evaluation terminates
/// naturally and bottom-up oracles are cheap.
pub fn random_nary_program(cfg: &NaryConfig) -> NaryProgram {
    assert!(cfg.preds >= 1 && cfg.base_preds >= 1 && cfg.domain >= 3 && cfg.grades >= 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut rules = String::new();
    let mut derived = Vec::new();
    for k in 0..cfg.preds {
        let head = format!("q{k}");
        let base = rng.gen_range(0..cfg.base_preds);
        let step = rng.gen_range(0..cfg.base_preds);
        writeln!(rules, "{head}(A,B,G) :- b{base}(A,B), grade0(G).").unwrap();
        // Sometimes recurse through an earlier predicate instead of
        // self, exercising mutual reference under adornment.
        let callee = if k > 0 && rng.gen_bool(0.3) {
            format!("q{}", rng.gen_range(0..k))
        } else {
            head.clone()
        };
        writeln!(
            rules,
            "{head}(A,B,G) :- b{step}(A,C), succ(G1,G), {callee}(C,B,G1)."
        )
        .unwrap();
        derived.push(head);
    }
    let mut facts = String::new();
    for b in 0..cfg.base_preds {
        for _ in 0..cfg.facts_per_base {
            let i = rng.gen_range(0..cfg.domain - 1);
            let j = rng.gen_range(i + 1..cfg.domain);
            writeln!(facts, "b{b}(n{i},n{j}).").unwrap();
        }
    }
    writeln!(facts, "grade0(g0).").unwrap();
    for g in 1..cfg.grades {
        writeln!(facts, "succ(g{},g{}).", g - 1, g).unwrap();
    }
    let text = format!("{rules}{facts}");
    let program = parse_program(&text).unwrap_or_else(|e| {
        panic!("generated n-ary program must parse: {e}\n{text}");
    });
    let mut queries = Vec::new();
    for head in &derived {
        let a = rng.gen_range(0..cfg.domain);
        let b = rng.gen_range(0..cfg.domain);
        let g = rng.gen_range(0..cfg.grades);
        queries.push(format!("{head}(n{a}, B, G)"));
        queries.push(format!("{head}(A, B, g{g})"));
        queries.push(format!("{head}(n{a}, B, g{g})"));
        queries.push(format!("{head}(n{a}, n{b}, g{g})"));
        queries.push(format!("{head}(A, B, G)"));
    }
    NaryProgram {
        text,
        program,
        derived,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::{binary_chain_violations, program_is_regular, Analysis};

    #[test]
    fn generated_programs_are_linear_binary_chain() {
        for seed in 0..40 {
            let rp = seeded(seed, RecursionStyle::Mixed);
            assert!(
                binary_chain_violations(&rp.program).is_empty(),
                "seed {seed} not binary-chain:\n{}",
                rp.text
            );
            let analysis = Analysis::of(&rp.program);
            assert!(
                analysis.program_is_linear(&rp.program),
                "seed {seed} not linear:\n{}",
                rp.text
            );
        }
    }

    #[test]
    fn regular_style_is_regular() {
        for seed in 0..40 {
            let rp = seeded(seed, RecursionStyle::Regular);
            let analysis = Analysis::of(&rp.program);
            assert!(
                program_is_regular(&rp.program, &analysis),
                "seed {seed} not regular:\n{}",
                rp.text
            );
        }
    }

    #[test]
    fn same_seed_same_program() {
        let a = seeded(7, RecursionStyle::Mixed);
        let b = seeded(7, RecursionStyle::Mixed);
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn different_seeds_differ() {
        let a = seeded(1, RecursionStyle::Mixed);
        let b = seeded(2, RecursionStyle::Mixed);
        assert_ne!(a.text, b.text);
    }

    #[test]
    fn facts_are_strictly_increasing() {
        let rp = seeded(3, RecursionStyle::Mixed);
        for line in rp.text.lines() {
            if let Some(rest) = line.strip_prefix('b') {
                if let Some((_, args)) = rest.split_once('(') {
                    if !args.contains(":-") && args.contains(",n") {
                        let args = args.trim_end_matches(").");
                        let mut parts = args.split(',');
                        let i: usize = parts
                            .next()
                            .unwrap()
                            .trim_start_matches('n')
                            .parse()
                            .unwrap();
                        let j: usize = parts
                            .next()
                            .unwrap()
                            .trim_start_matches('n')
                            .parse()
                            .unwrap();
                        assert!(i < j, "fact not increasing: {line}");
                    }
                }
            }
        }
    }

    #[test]
    fn nary_programs_are_linear_and_chain_adornable() {
        for seed in 0..20 {
            let np = random_nary_program(&NaryConfig {
                seed,
                ..NaryConfig::default()
            });
            let analysis = Analysis::of(&np.program);
            assert!(
                analysis.program_is_linear(&np.program),
                "seed {seed} not linear:\n{}",
                np.text
            );
            assert_eq!(np.queries.len(), np.derived.len() * 5);
            // Every query's binding pattern adorns into a chain program
            // (the §4 exactness condition).
            let mut program = np.program.clone();
            for q in &np.queries {
                let query = rq_datalog::Query::parse(&mut program, q).unwrap();
                let adorned = rq_adorn::adorn(&program, &query)
                    .unwrap_or_else(|e| panic!("seed {seed} `{q}`: {e}\n{}", np.text));
                assert!(
                    rq_adorn::chain_violations(&program, &adorned).is_empty(),
                    "seed {seed} `{q}` violates the chain condition:\n{}",
                    np.text
                );
            }
        }
    }

    #[test]
    fn nary_same_seed_same_program() {
        let a = random_nary_program(&NaryConfig::default());
        let b = random_nary_program(&NaryConfig::default());
        assert_eq!(a.text, b.text);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn mutual_pairs_are_mutually_recursive() {
        // Find a seed with a pair and check the analysis agrees.
        for seed in 0..60 {
            let rp = random_program(&RandProgConfig {
                seed,
                mutual_prob: 1.0,
                ..RandProgConfig::default()
            });
            let a = rp.program.pred_by_name("p0a").unwrap();
            let b = rp.program.pred_by_name("p0b").unwrap();
            let analysis = Analysis::of(&rp.program);
            assert!(
                analysis.mutually_recursive(a, b),
                "seed {seed}: p0a/p0b not mutually recursive:\n{}",
                rp.text
            );
        }
    }
}
