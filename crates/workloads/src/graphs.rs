//! Graph generators for transitive-closure scaling experiments
//! (Theorems 3–4): chains, complete binary trees, grids, and random
//! layered DAGs, plus balanced same-generation trees.

use crate::{sg_program, tc_program, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// A chain `v0 → v1 → … → vn`.  Query `tc(v0, Y)`; n answers.
pub fn chain(n: usize) -> Workload {
    let mut facts = String::new();
    for i in 0..n {
        writeln!(facts, "e(v{}, v{}).", i, i + 1).unwrap();
    }
    Workload {
        name: format!("chain(n={n})"),
        program: tc_program(&facts),
        query: "tc(v0, Y)".to_string(),
        expected_answers: Some(n),
    }
}

/// A complete binary tree of the given depth, edges parent → child.
/// Query `tc(v1, Y)`; answers = all 2^{depth+1} − 2 proper descendants.
pub fn binary_tree(depth: usize) -> Workload {
    let mut facts = String::new();
    let nodes = (1usize << (depth + 1)) - 1;
    for i in 1..=nodes {
        for c in [2 * i, 2 * i + 1] {
            if c <= nodes {
                writeln!(facts, "e(v{i}, v{c}).").unwrap();
            }
        }
    }
    Workload {
        name: format!("btree(depth={depth})"),
        program: tc_program(&facts),
        query: "tc(v1, Y)".to_string(),
        expected_answers: Some(nodes - 1),
    }
}

/// A w×h grid with right and down edges.  Query `tc(g0_0, Y)`; answers =
/// all other cells.
pub fn grid(w: usize, h: usize) -> Workload {
    let mut facts = String::new();
    for x in 0..w {
        for y in 0..h {
            if x + 1 < w {
                writeln!(facts, "e(g{x}_{y}, g{}_{y}).", x + 1).unwrap();
            }
            if y + 1 < h {
                writeln!(facts, "e(g{x}_{y}, g{x}_{}).", y + 1).unwrap();
            }
        }
    }
    Workload {
        name: format!("grid({w}x{h})"),
        program: tc_program(&facts),
        query: "tc(g0_0, Y)".to_string(),
        expected_answers: Some(w * h - 1),
    }
}

/// A random layered DAG: `layers` layers of `width` nodes; each node has
/// edges to the next layer with probability `p`.  Deterministic per seed.
pub fn layered_dag(layers: usize, width: usize, p: f64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = String::new();
    let mut edges = 0usize;
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for j in 0..width {
                if rng.gen_bool(p) {
                    writeln!(facts, "e(l{l}_{i}, l{}_{j}).", l + 1).unwrap();
                    edges += 1;
                }
            }
        }
    }
    if edges == 0 {
        // Keep the base relation nonempty so the program parses with `e`.
        writeln!(facts, "e(l0_0, l1_0).").unwrap();
    }
    Workload {
        name: format!("dag(l={layers},w={width},p={p},seed={seed})"),
        program: tc_program(&facts),
        query: "tc(l0_0, Y)".to_string(),
        expected_answers: None,
    }
}

/// A balanced same-generation tree: a complete binary "up" tree of the
/// given depth from the query node's ancestor line... more precisely the
/// standard sg benchmark: up edges child → parent in a complete binary
/// tree, `flat` the identity-ish sibling links at the root layer, and
/// down edges parent → child (the inverse tree).  Query `sg(leaf0, Y)`:
/// all leaves at the same depth.
pub fn sg_tree(depth: usize) -> Workload {
    let mut facts = String::new();
    let nodes = (1usize << (depth + 1)) - 1;
    for i in 2..=nodes {
        // child i has parent i/2.
        writeln!(facts, "up(v{i}, v{}).", i / 2).unwrap();
        writeln!(facts, "down(v{}, v{i}).", i / 2).unwrap();
    }
    writeln!(facts, "flat(v1, v1).").unwrap();
    let first_leaf = 1usize << depth;
    Workload {
        name: format!("sgtree(depth={depth})"),
        program: sg_program(&facts),
        query: format!("sg(v{first_leaf}, Y)"),
        // Every leaf is the same generation as leaf0 (including itself).
        expected_answers: Some(1 << depth),
    }
}

/// A random same-generation forest: `n` nodes per side, random up/down
/// edges between consecutive levels of `levels` levels, flat links at
/// the top.  Used by property tests to stress the engine against the
/// oracles on irregular data.
pub fn sg_random(levels: usize, width: usize, p: f64, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut facts = String::new();
    let mut any = false;
    for l in 0..levels.saturating_sub(1) {
        for i in 0..width {
            for j in 0..width {
                if rng.gen_bool(p) {
                    writeln!(facts, "up(u{l}_{i}, u{}_{j}).", l + 1).unwrap();
                    any = true;
                }
                if rng.gen_bool(p) {
                    writeln!(facts, "down(d{}_{j}, d{l}_{i}).", l + 1).unwrap();
                }
            }
        }
    }
    for i in 0..width {
        for j in 0..width {
            if rng.gen_bool(p) {
                writeln!(facts, "flat(u{}_{i}, d{}_{j}).", levels - 1, levels - 1).unwrap();
            }
        }
    }
    if !any {
        writeln!(facts, "up(u0_0, u1_0). flat(u1_0, d1_0). down(d1_0, d0_0).").unwrap();
    }
    Workload {
        name: format!("sgrand(l={levels},w={width},p={p},seed={seed})"),
        program: sg_program(&facts),
        query: "sg(u0_0, Y)".to_string(),
        expected_answers: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use rq_datalog::naive_eval;

    fn count_answers(w: &Workload, from: &str, pred: &str) -> usize {
        let program = &w.program;
        let p = program.pred_by_name(pred).unwrap();
        let Some(a) = program.consts.get(&ConstValue::Str(from.into())) else {
            return 0;
        };
        naive_eval(program)
            .unwrap()
            .tuples(p)
            .into_iter()
            .filter(|t| t[0] == a)
            .count()
    }

    #[test]
    fn chain_reaches_everything() {
        let w = chain(12);
        assert_eq!(count_answers(&w, "v0", "tc"), 12);
    }

    #[test]
    fn btree_counts_descendants() {
        let w = binary_tree(3);
        assert_eq!(count_answers(&w, "v1", "tc"), w.expected_answers.unwrap());
    }

    #[test]
    fn grid_reaches_all_cells() {
        let w = grid(4, 5);
        assert_eq!(count_answers(&w, "g0_0", "tc"), 19);
    }

    #[test]
    fn sg_tree_finds_all_leaves() {
        let w = sg_tree(3);
        assert_eq!(count_answers(&w, "v8", "sg"), 8);
    }

    #[test]
    fn layered_dag_is_deterministic() {
        let a = layered_dag(4, 5, 0.3, 42);
        let b = layered_dag(4, 5, 0.3, 42);
        assert_eq!(a.program.facts.len(), b.program.facts.len());
        let c = layered_dag(4, 5, 0.3, 43);
        // Different seed, almost surely different edge count.
        assert_ne!(a.program.facts.len(), 0);
        let _ = c;
    }

    #[test]
    fn generators_produce_parseable_programs() {
        for w in [
            chain(3),
            binary_tree(2),
            grid(2, 2),
            layered_dag(3, 3, 0.5, 1),
            sg_tree(2),
            sg_random(3, 3, 0.4, 7),
        ] {
            assert!(w.program.rules.len() >= 2, "{}", w.name);
            assert!(!w.program.facts.is_empty(), "{}", w.name);
        }
    }
}
