//! Workload generators for the paper's evaluation section.
//!
//! * [`fig7`] — the three acyclic same-generation samples of Figure 7,
//!   reconstructed from the paper's prose (the scanned figure is
//!   ambiguous; see each constructor's docs for the shape and the prose
//!   it satisfies);
//! * [`fig8`] — the cyclic same-generation data of Figure 8 (up-cycle of
//!   length m, down-cycle of length n);
//! * [`graphs`] — chains, trees, grids, and random layered DAGs for
//!   transitive-closure scaling (Theorems 3–4);
//! * [`flights`] — §4's airline-connection database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig7;
pub mod fig8;
pub mod flights;
pub mod graphs;
pub mod randprog;

use rq_datalog::{parse_program, Program};

/// A generated workload: a program (rules + facts) plus the query to ask.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name for reports.
    pub name: String,
    /// The program, facts included.
    pub program: Program,
    /// Query text, e.g. `sg(a0, Y)`.
    pub query: String,
    /// The number of answers, when analytically known.
    pub expected_answers: Option<usize>,
}

/// The same-generation rules used by the Figure 7/8 workloads.
pub const SG_RULES: &str = "sg(X,Y) :- flat(X,Y).\n\
                            sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n";

/// The right-linear transitive-closure rules.
pub const TC_RULES: &str = "tc(X,Y) :- e(X,Y).\n\
                            tc(X,Z) :- e(X,Y), tc(Y,Z).\n";

pub(crate) fn sg_program(facts: &str) -> Program {
    parse_program(&format!("{SG_RULES}{facts}")).expect("generated program parses")
}

pub(crate) fn tc_program(facts: &str) -> Program {
    parse_program(&format!("{TC_RULES}{facts}")).expect("generated program parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sg_and_tc_templates_parse() {
        let p = sg_program("up(a,b). flat(b,c). down(c,d).");
        assert!(p.pred_by_name("sg").is_some());
        let p = tc_program("e(a,b).");
        assert!(p.pred_by_name("tc").is_some());
    }
}
