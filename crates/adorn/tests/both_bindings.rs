//! §3 ends by noting that for queries `p(a, b)` "the bindings of the
//! second argument cannot be utilized in the algorithm … However, if we
//! apply to the program the transformation to be presented in the next
//! section, then we can make use of the bindings of both arguments in
//! the evaluation."  These tests pin that claim: the §4 pipeline with a
//! `bb` adornment answers correctly *and* consults fewer facts than the
//! §3 evaluate-then-test-membership fallback when the second binding is
//! selective.

use rq_common::Counters;
use rq_datalog::{parse_program, seminaive_eval, Database, Program, Query, QueryArg};
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};

const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                  sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n";

/// An up chain of depth d from `a`, a flat edge at the top, and a wide
/// down tree: every level multiplies by `width`, but only one leaf is
/// the queried `b`.
fn deep_sg_with_wide_down(depth: usize, width: usize) -> (String, String) {
    let mut facts = String::new();
    for i in 0..depth {
        facts.push_str(&format!("up(a{i}, a{}).\n", i + 1));
    }
    facts.push_str(&format!("flat(a{depth}, d).\n"));
    // Down tree rooted at d with `depth` levels of fan-out `width`.
    let mut frontier = vec!["d".to_string()];
    let mut counter = 0usize;
    for _ in 0..depth {
        let mut next = Vec::new();
        for node in &frontier {
            for _ in 0..width {
                let child = format!("w{counter}");
                counter += 1;
                facts.push_str(&format!("down({node}, {child}).\n"));
                next.push(child);
            }
        }
        frontier = next;
    }
    // The queried constant is the *first* leaf.
    let b = frontier[0].clone();
    (facts, b)
}

fn oracle_holds(program: &Program, x: &str, y: &str) -> bool {
    let result = seminaive_eval(program).unwrap();
    let sg = program.pred_by_name("sg").unwrap();
    let to_name = |c: rq_common::Const| program.consts.display(c);
    result
        .tuples(sg)
        .iter()
        .any(|t| to_name(t[0]) == x && to_name(t[1]) == y)
}

/// §3's bb fallback: evaluate `sg(a, Y)` and test membership.
fn section3_bb(program: &Program, qtext: &str) -> (bool, Counters) {
    let mut p = program.clone();
    let query = Query::parse(&mut p, qtext).unwrap();
    let (QueryArg::Bound(a), QueryArg::Bound(b)) = (query.args[0], query.args[1]) else {
        panic!("bb query expected");
    };
    let db = Database::from_program(&p);
    let sys = lemma1(&p, &Lemma1Options::default()).unwrap().system;
    let source = EdbSource::new(&db);
    let ev = Evaluator::new(&sys, &source);
    let (holds, out) = rq_engine::query_bb(&ev, query.pred, a, b, &EvalOptions::default());
    (holds, out.counters)
}

/// §4 with both bindings.
fn section4_bb(program: &Program, qtext: &str) -> (bool, Counters) {
    let mut p = program.clone();
    let query = Query::parse(&mut p, qtext).unwrap();
    let db = Database::from_program(&p);
    let answer = rq_adorn::answer_query(&p, &db, &query, &EvalOptions::default())
        .unwrap_or_else(|e| panic!("§4 failed on {qtext}: {e}"));
    // A bb query has no free positions: one empty row means "yes".
    (!answer.rows.is_empty(), answer.outcome.counters)
}

#[test]
fn section4_bb_answers_match_oracle() {
    let (facts, b) = deep_sg_with_wide_down(3, 2);
    let program = parse_program(&format!("{SG}{facts}")).unwrap();
    let positive = format!("sg(a0, {b})");
    assert!(oracle_holds(&program, "a0", &b));
    let (got, _) = section4_bb(&program, &positive);
    assert!(got, "bb query should hold");
    // Negative: a constant on the up chain is not same-generation-0.
    let (got, _) = section4_bb(&program, "sg(a0, a1)");
    assert!(!got);
    assert!(!oracle_holds(&program, "a0", "a1"));
}

#[test]
fn section4_bb_agrees_with_section3_bb_everywhere() {
    let (facts, b) = deep_sg_with_wide_down(3, 2);
    let program = parse_program(&format!("{SG}{facts}")).unwrap();
    for y in ["d", "w0", "w5", &b, "a1"] {
        let q = format!("sg(a0, {y})");
        let (s3, _) = section3_bb(&program, &q);
        let (s4, _) = section4_bb(&program, &q);
        assert_eq!(s3, s4, "disagreement on {q}");
        assert_eq!(s3, oracle_holds(&program, "a0", y), "oracle on {q}");
    }
}

#[test]
fn second_binding_restricts_facts_consulted() {
    // Width 3, depth 5: the down tree has 3^5 = 243 leaves.  §3 must
    // fan out over all of them; §4's bb adornment walks backwards from
    // the single queried leaf.
    let (facts, b) = deep_sg_with_wide_down(5, 3);
    let program = parse_program(&format!("{SG}{facts}")).unwrap();
    let q = format!("sg(a0, {b})");
    let (yes3, c3) = section3_bb(&program, &q);
    let (yes4, c4) = section4_bb(&program, &q);
    assert!(yes3 && yes4);
    assert!(
        c4.tuples_retrieved * 4 < c3.tuples_retrieved,
        "§4 bb {} !≪ §3 bb {}",
        c4.tuples_retrieved,
        c3.tuples_retrieved
    );
}

#[test]
fn bb_on_cyclic_up_terminates_via_section4() {
    // Both arguments bound with a cyclic up relation: §4's bb machine
    // is driven by both frontiers, and the virtual relation runs out of
    // new pairs, so the traversal converges naturally.
    let src = format!(
        "{SG}\
         up(a0,a1). up(a1,a0). flat(a0,b0). flat(a1,b1).\n\
         down(b0,b1). down(b1,b0)."
    );
    let program = parse_program(&src).unwrap();
    let mut p = program.clone();
    let query = Query::parse(&mut p, "sg(a0, b0)").unwrap();
    let db = Database::from_program(&p);
    let options = EvalOptions {
        max_iterations: Some(64),
        ..EvalOptions::default()
    };
    let answer = rq_adorn::answer_query(&p, &db, &query, &options).unwrap();
    let holds = !answer.rows.is_empty();
    assert_eq!(holds, oracle_holds(&program, "a0", "b0"));
}
