//! Property tests for the §4 pipeline: on randomized databases for a
//! family of chain programs, `answer_query` must agree with bottom-up
//! evaluation for every binding pattern that passes the chain check.

use proptest::prelude::*;
use rq_adorn::{answer_query, oracle_rows, QueryError};
use rq_datalog::{parse_program, Database, Query};
use rq_engine::EvalOptions;

/// Facts over a small constant pool for the given binary predicates.
fn facts_strategy(preds: &'static [&'static str]) -> impl Strategy<Value = String> {
    proptest::collection::vec((0..preds.len(), 0..7u8, 0..7u8), 4..28).prop_map(move |v| {
        let mut out = String::new();
        for (p, x, y) in v {
            out.push_str(&format!("{}(k{x},k{y}).\n", preds[p]));
        }
        // Keep every predicate nonempty so arities are declared.
        for p in preds {
            out.push_str(&format!("{p}(k0,k1).\n"));
        }
        out
    })
}

/// 3-ary facts.
fn facts3_strategy(pred: &'static str) -> impl Strategy<Value = String> {
    proptest::collection::vec((0..6u8, 0..6u8, 0..6u8), 4..24).prop_map(move |v| {
        let mut out = String::new();
        for (x, y, z) in v {
            out.push_str(&format!("{pred}(k{x},k{y},k{z}).\n"));
        }
        out
    })
}

fn check_query(src: &str, query: &str) -> Result<(), TestCaseError> {
    let mut program = parse_program(src).expect("generated program parses");
    let q = Query::parse(&mut program, query).expect("query parses");
    let db = Database::from_program(&program);
    let options = EvalOptions {
        // Random data can be cyclic; bound generously (well above any
        // |D1|·|D2| for 7 constants).
        max_iterations: Some(200),
        ..EvalOptions::default()
    };
    match answer_query(&program, &db, &q, &options) {
        Ok(ans) => {
            let oracle = oracle_rows(&program, &q);
            prop_assert_eq!(
                &ans.rows,
                &oracle,
                "query {} on\n{}\nsystem:\n{}",
                query,
                src,
                ans.binary.display_system(&program)
            );
        }
        Err(QueryError::NotChain(_)) => {
            // Acceptable: the binding pattern falls outside the class.
        }
        Err(e) => prop_assert!(false, "unexpected error {e} for {query}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Same generation, all four binding patterns.
    #[test]
    fn sg_all_patterns(facts in facts_strategy(&["up", "down", "flat"])) {
        let src = format!(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n{facts}"
        );
        for q in ["sg(k0, Y)", "sg(X, k1)", "sg(k0, k1)", "sg(X, Y)"] {
            check_query(&src, q)?;
        }
    }

    /// Naughton's argument-swapping recursion (generates two mutually
    /// recursive adornments).
    #[test]
    fn naughton_swapped_recursion(facts in facts_strategy(&["b0", "b1"])) {
        let src = format!(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n{facts}"
        );
        for q in ["p(k0, Y)", "p(X, k1)", "p(k2, k3)"] {
            check_query(&src, q)?;
        }
    }

    /// A 3-ary graded reachability program.
    #[test]
    fn three_ary_graded(facts in facts_strategy(&["edge"]), facts3 in facts3_strategy("tri")) {
        let src = format!(
            "r(A,B,N) :- tri(A,B,N).\n\
             r(A,B,N) :- edge(A,C), r(C,B,M), step(M,N).\n\
             {facts}{facts3}\
             step(k0,k1). step(k1,k2). step(k2,k3). step(k3,k4).\n"
        );
        for q in ["r(k0, B, N)", "r(k1, B, N)"] {
            check_query(&src, q)?;
        }
    }

    /// A 4-ary program shaped like the flight example (without built-ins
    /// so any data works).
    #[test]
    fn four_ary_flightlike(facts in proptest::collection::vec((0..5u8, 0..5u8, 0..5u8, 0..5u8), 4..20)) {
        let mut fact_src = String::new();
        for (a, b, c, d) in facts {
            fact_src.push_str(&format!("hop(k{a},k{b},k{c},k{d}).\n"));
        }
        let src = format!(
            "go(S,T,D,U) :- hop(S,T,D,U).\n\
             go(S,T,D,U) :- hop(S,T,D1,U1), go(D1,U1,D,U).\n{fact_src}"
        );
        for q in ["go(k0, k1, D, U)", "go(k2, k0, D, U)"] {
            check_query(&src, q)?;
        }
    }
}
