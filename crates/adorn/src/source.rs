//! Demand-driven access to the §4 virtual relations.
//!
//! "Tuples in base-r, in-r, and out-r will only be retrieved 'by demand',
//! that is, when the graph-traversal algorithm has entered a node
//! belonging to the domain of one of these relations.  Only then will the
//! original base relations be consulted and tuples retrieved and joined."
//!
//! A successor probe `rel(t(c̄), ?)` decodes the tuple constant, binds the
//! input terms, runs the defining join against the original database
//! (reusing the Datalog backtracking-join machinery, with built-ins
//! deferred until bound), and interns the resulting output tuples.

use crate::transform::{BinaryProgram, VirtualRel};
use rq_common::{BoundedMemo, Const, Counters, FxHashMap, FxHashSet, Pred};
use rq_datalog::{
    fire_seeded, Atom, Database, DeltaView, Literal, Program, Relation, Term, WholeDb,
};
use rq_engine::TupleSource;
use std::sync::{Arc, Mutex};

/// First id handed out for tuple constants.  Tuple ids live in the top
/// half of the `u32` id space so they can never collide with program
/// constants (interned densely from zero), even when a probe space is
/// carried across an epoch whose ingest grew the program interner.
const TUPLE_ID_BASE: u32 = 1 << 31;

/// Interner for the tuple constants a probe space mints: a dense table
/// of component slices plus a reverse map.  Private to the probe space
/// — unlike the program's persistent interner it owns its storage
/// outright, so a fresh space allocates nothing and the first intern of
/// a query never pays a copy-on-write of shared interner chunks.
#[derive(Clone, Default)]
struct TupleTable {
    /// Component slices, indexed by `id - TUPLE_ID_BASE`.
    components: Vec<Box<[Const]>>,
    /// Reverse map for dedup: components → id.
    lookup: FxHashMap<Box<[Const]>, Const>,
}

impl TupleTable {
    fn intern(&mut self, components: &[Const]) -> Const {
        if let Some(&id) = self.lookup.get(components) {
            return id;
        }
        let next = u32::try_from(self.components.len())
            .ok()
            .and_then(|n| TUPLE_ID_BASE.checked_add(n))
            .expect("tuple table exhausted the id space");
        let id = Const::from_index(next as usize);
        let boxed: Box<[Const]> = components.into();
        self.components.push(boxed.clone());
        self.lookup.insert(boxed, id);
        id
    }

    fn components(&self, c: Const) -> &[Const] {
        let idx = (c.index() as u32)
            .checked_sub(TUPLE_ID_BASE)
            .expect("expected a tuple constant") as usize;
        &self.components[idx]
    }
}

/// Hit/miss/entry counts of one [`ProbeSpace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Probes answered from the memo.
    pub hits: u64,
    /// Probes that ran the defining join.
    pub misses: u64,
    /// Memoized `(relation, key, direction)` probe results.
    pub entries: usize,
}

impl ProbeStats {
    /// Fold `other` into `self` with saturating arithmetic — the
    /// aggregation an epoch context runs over all of its probe spaces,
    /// safe even if a counter has (pathologically) reached the top of
    /// its range.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
        self.entries = self.entries.saturating_add(other.entries);
    }
}

/// The shareable half of a [`VirtualSource`]: the tuple-constant
/// interner and the probe memo.
///
/// Every probe of a §4 virtual relation joins the same immutable base
/// relations, so its result depends only on the database version and
/// the transformed program — never on which query asked.  Hoisting the
/// interner + memo out of per-query scope lets a whole batch of
/// adorned queries against one snapshot epoch pay each virtual-
/// predicate probe **once**: the serving layer keys one space per
/// `(epoch, predicate, adornment)` and hands it to every
/// `VirtualSource` it builds for that plan, discarding the space
/// wholesale when a new epoch is published.
///
/// Thread-safe by construction (the interner sits behind a `Mutex`,
/// the memo behind an `RwLock`), which is also what makes
/// [`VirtualSource`] `Sync` — a requirement of the engine's parallel
/// machine-instance expansion.  The memo is bounded by an entry cap:
/// once full, further probe results are computed but not recorded —
/// always sound, the memo is only an optimization — so a long-lived
/// epoch cannot grow it without bound.
pub struct ProbeSpace {
    /// Interner for tuple constants.  Component ids are program
    /// constants; tuple ids start at [`TUPLE_ID_BASE`], above every id
    /// the program interner can reach.
    tuples: Mutex<TupleTable>,
    /// Memo of completed probes: `(relation, key, forward?) → outputs`.
    /// The traversal can reach the same virtual tuple from different
    /// automaton states and different queries re-demand the same
    /// tuples; re-running the join would re-consult the same base
    /// facts.
    memo: BoundedMemo<(Pred, Const, bool), Vec<Const>>,
}

/// Default entry cap for [`ProbeSpace`].
pub const DEFAULT_PROBE_ENTRIES: usize = 1 << 18;

impl ProbeSpace {
    /// Fresh space compatible with `program`'s constant ids, with the
    /// default entry cap ([`DEFAULT_PROBE_ENTRIES`]).
    pub fn new(program: &Program) -> Self {
        Self::with_capacity(program, DEFAULT_PROBE_ENTRIES)
    }

    /// Fresh space holding at most `max_entries` memoized probe
    /// results; overflow stops recording (probes still compute).
    pub fn with_capacity(program: &Program, max_entries: usize) -> Self {
        debug_assert!(
            program.consts.len() < TUPLE_ID_BASE as usize,
            "program interner overlaps the tuple id range"
        );
        Self {
            tuples: Mutex::new(TupleTable::default()),
            memo: BoundedMemo::new(max_entries),
        }
    }

    /// Lock the tuple interner, recovering from poison.  A panicking
    /// probe thread (propagated by its scope join) can leave the mutex
    /// poisoned mid-batch; the table itself is append-only — an
    /// interrupted intern leaves it merely smaller, never torn — so
    /// serving the remaining queries of the batch from it is sound.
    fn tuples(&self) -> std::sync::MutexGuard<'_, TupleTable> {
        self.tuples
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Deep-copy this space: same tuple ids, same memo entries (values
    /// `Arc`-shared), independent storage, fresh hit/miss counters.
    ///
    /// The delta-repair path forks the previous epoch's space, patches
    /// the fork against the publish's delta, and hands the fork to the
    /// new epoch: readers of the old epoch keep an untouched space (no
    /// new rows leak into already-published results), while the new
    /// epoch starts from all previously-paid probe and intern work —
    /// with identical tuple ids, so carried machine-memo entries keep
    /// meaning the same tuples.
    pub fn fork(&self) -> Self {
        let table = self.tuples().clone();
        let memo = BoundedMemo::new(self.memo.capacity());
        memo.carry_from(&self.memo, |_| true);
        Self {
            tuples: Mutex::new(table),
            memo,
        }
    }

    /// Merge a publish's new `(in, out)` pairs of virtual relation `r`
    /// into the probe memo: an existing forward entry for `in` gains
    /// `out`, an existing backward entry for `out` gains `in`.  Absent
    /// keys stay absent — a later probe recomputes them against the new
    /// database.  Patched entries are complete again provided `pairs`
    /// really is the full delta of `r` (what [`delta_pairs`] computes),
    /// because ingests only ever add tuples.  Returns the rows added.
    pub fn patch_pairs(&self, r: Pred, pairs: &[(Const, Const)]) -> u64 {
        let mut added = 0u64;
        for &(input, output) in pairs {
            added += self.patch_one((r, input, true), output);
            added += self.patch_one((r, output, false), input);
        }
        added
    }

    /// Append `row` to the memo entry at `key` if the entry exists and
    /// lacks it; returns 1 if a row was added.
    fn patch_one(&self, key: (Pred, Const, bool), row: Const) -> u64 {
        let Some(existing) = self.memo.peek(&key) else {
            return 0;
        };
        if existing.contains(&row) {
            return 0;
        }
        let mut rows = existing.as_ref().clone();
        rows.push(row);
        self.memo.insert(key, Arc::new(rows));
        1
    }

    /// Hit/miss/entry counts.
    pub fn stats(&self) -> ProbeStats {
        let stats = self.memo.stats();
        ProbeStats {
            hits: stats.hits,
            misses: stats.misses,
            entries: stats.entries,
        }
    }
}

/// Enumerate the `(in, out)` tuple-constant pairs a publish's added
/// base tuples contribute to each §4 virtual relation of `bin` — the
/// seminaive delta of the defining joins.
///
/// For every virtual relation and every body-atom occurrence of a
/// predicate in `delta`, the defining join is re-fired over the **new**
/// database with the delta relation substituted at that occurrence and
/// the delta atom moved to the front, so the join is driven by the few
/// new tuples rather than re-enumerating the base relation.  The union
/// over occurrences is the complete set of new pairs (a pair may also
/// be derivable from old tuples alone — consumers must tolerate
/// already-known pairs, which both [`ProbeSpace::patch_pairs`] and the
/// engine's repair do).  Emitted tuples are interned into `space`,
/// which should be the forked space the new epoch will serve from.
///
/// Returns `None` when some virtual relation cannot be delta-enumerated
/// — output variables not bound by the defining join (non-chain mode),
/// in/out terms whose variables the join does not cover (a full
/// enumeration could not close the key space), or a built-in left
/// unbound without the probe key's seed bindings.  The caller then
/// falls back to dropping the carried state for this plan.
pub fn delta_pairs(
    program: &Program,
    db: &Database,
    bin: &BinaryProgram,
    space: &ProbeSpace,
    delta: &FxHashMap<Pred, Relation>,
    counters: &mut Counters,
) -> Option<FxHashMap<Pred, Vec<(Const, Const)>>> {
    let mut out: FxHashMap<Pred, Vec<(Const, Const)>> = FxHashMap::default();
    for (&r, rel) in &bin.virtuals {
        if !rel.unbound_out_vars.is_empty() {
            return None;
        }
        let rule = &program.rules[rel.rule_idx];
        let mut bound: FxHashSet<rq_common::Var> = FxHashSet::default();
        for &li in &rel.literals {
            if let Some(atom) = rule.body[li].as_atom() {
                for t in &atom.args {
                    if let Term::Var(v) = t {
                        bound.insert(*v);
                    }
                }
            }
        }
        let covered = rel
            .in_terms
            .iter()
            .chain(rel.out_terms.iter())
            .all(|t| match t {
                Term::Var(v) => bound.contains(v),
                Term::Const(_) => true,
            });
        if !covered {
            return None;
        }
        let mut head_terms: Vec<Term> =
            Vec::with_capacity(rel.in_terms.len() + rel.out_terms.len());
        head_terms.extend(rel.in_terms.iter().copied());
        head_terms.extend(rel.out_terms.iter().copied());
        let mut pairs: Vec<(Const, Const)> = Vec::new();
        for (pos, &li) in rel.literals.iter().enumerate() {
            let Some(atom) = rule.body[li].as_atom() else {
                continue;
            };
            let Some(delta_rel) = delta.get(&atom.pred) else {
                continue;
            };
            if delta_rel.is_empty() {
                continue;
            }
            // Delta atom first (occurrence 0 reads the delta); further
            // occurrences of the same predicate read the full relation.
            let body = std::iter::once(&rule.body[li]).chain(
                rel.literals
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != pos)
                    .map(|(_, &lj)| &rule.body[lj]),
            );
            let view = DeltaView {
                full: db,
                target: atom.pred,
                target_occurrence: 0,
                delta: delta_rel,
            };
            let mut env: Vec<Option<Const>> = vec![None; rule.num_vars()];
            let mut tuples = space.tuples();
            fire_seeded(
                program,
                body,
                &head_terms,
                &mut env,
                &view,
                counters,
                &mut |row| {
                    let (ins, outs) = row.split_at(rel.in_terms.len());
                    pairs.push((tuples.intern(ins), tuples.intern(outs)));
                },
            )
            .ok()?;
        }
        if !pairs.is_empty() {
            pairs.sort_unstable();
            pairs.dedup();
            out.insert(r, pairs);
        }
    }
    Some(out)
}

impl std::fmt::Debug for ProbeSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ProbeSpace")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// A [`TupleSource`] computing virtual relations on demand.
pub struct VirtualSource<'a> {
    program: &'a Program,
    /// The original EDB, possibly extended with a `__domain` unary
    /// relation when some virtual relation has unbound output variables
    /// (only in the unchecked/non-chain mode).
    db: Database,
    virtuals: &'a FxHashMap<Pred, VirtualRel>,
    /// The tuple interner + probe memo — private to this query, or
    /// shared with every query of one snapshot epoch
    /// ([`VirtualSource::with_space`]).
    space: Arc<ProbeSpace>,
    /// The `__domain` predicate, if materialized.
    domain_pred: Option<Pred>,
}

impl<'a> VirtualSource<'a> {
    /// Build a source for a transformed program with a private
    /// [`ProbeSpace`] (per-query memoization only).
    pub fn new(program: &'a Program, db: &Database, bin: &'a BinaryProgram) -> Self {
        Self::with_space(program, db, bin, Arc::new(ProbeSpace::new(program)))
    }

    /// Build a source whose probes read and feed a shared
    /// [`ProbeSpace`].  The caller owns the invalidation contract: a
    /// space must only be shared between sources over the **same**
    /// database version and the **same** transformed program.
    pub fn with_space(
        program: &'a Program,
        db: &Database,
        bin: &'a BinaryProgram,
        space: Arc<ProbeSpace>,
    ) -> Self {
        let needs_domain = bin
            .virtuals
            .values()
            .any(|v| !v.unbound_out_vars.is_empty());
        let mut db = db.clone();
        let mut domain_pred = None;
        if needs_domain {
            // Materialize the active domain as a unary relation so
            // unbound output variables can range over it (reproducing
            // the overapproximation the paper warns about for non-chain
            // programs).
            let max_virtual = bin.names.keys().map(|p| p.0).max().unwrap_or(0);
            let dp = Pred(max_virtual + 1);
            db.ensure_pred(dp, 1);
            let mut constants: Vec<Const> = Vec::new();
            for pi in 0..program.preds.len() {
                let rel = db.relation(Pred::from_index(pi));
                for t in rel.iter() {
                    constants.extend_from_slice(t);
                }
            }
            for c in constants {
                db.insert(dp, &[c]);
            }
            domain_pred = Some(dp);
        }
        Self {
            program,
            db,
            virtuals: &bin.virtuals,
            space,
            domain_pred,
        }
    }

    /// Intern a tuple constant.
    pub fn intern_tuple(&self, components: Vec<Const>) -> Const {
        self.space.tuples().intern(&components)
    }

    /// Decode a tuple constant into its components.
    pub fn decode_tuple(&self, c: Const) -> Vec<Const> {
        self.space.tuples().components(c).to_vec()
    }

    /// Render a tuple constant (for tests and examples).  Components
    /// below `TUPLE_ID_BASE` render through the program interner;
    /// nested tuple ids recurse.
    pub fn display_const(&self, c: Const) -> String {
        if (c.index() as u32) < TUPLE_ID_BASE {
            return self.program.consts.display(c);
        }
        let parts = self.decode_tuple(c);
        let inner: Vec<String> = parts.iter().map(|&p| self.display_const(p)).collect();
        format!("t({})", inner.join(","))
    }

    /// Evaluate one direction of a virtual relation: bind `bind_terms`
    /// to `key`'s components, join `rel`'s literals, and emit the
    /// instantiation of `emit_terms` for every match.
    ///
    /// Chain programs (no unbound output variables) take the seeded
    /// fast path: the key's components are bound straight into the join
    /// environment and the rule's own literals are joined in place —
    /// no substitution map, no cloned body, no synthetic rule.  This is
    /// the cold §4 hot loop, where every query re-demands its probes;
    /// the key components and the environment live in stack buffers
    /// (heap fallback past 32 entries) and the tuple table is locked
    /// once for the whole probe — decode and result interning share the
    /// same guard.
    fn probe(
        &self,
        rel: &VirtualRel,
        bind_terms: &[Term],
        emit_terms: &[Term],
        key: Const,
        out: &mut Vec<Const>,
        counters: &mut Counters,
    ) {
        let mut tuples = self.space.tuples();
        let mut key_stack = [Const::from_index(0); 32];
        let mut key_heap: Vec<Const> = Vec::new();
        let components: &[Const] = {
            let parts = tuples.components(key);
            if parts.len() <= 32 {
                key_stack[..parts.len()].copy_from_slice(parts);
                &key_stack[..parts.len()]
            } else {
                key_heap.extend_from_slice(parts);
                &key_heap
            }
        };
        if components.len() != bind_terms.len() {
            return;
        }
        let rule = &self.program.rules[rel.rule_idx];
        let num_vars = rule.num_vars();
        let mut env_stack = [None; 32];
        let mut env_heap: Vec<Option<Const>> = Vec::new();
        let env: &mut [Option<Const>] = if num_vars <= 32 {
            &mut env_stack[..num_vars]
        } else {
            env_heap.resize(num_vars, None);
            &mut env_heap
        };
        // Seed the environment: input variables become constants; an
        // input constant that disagrees with the key kills the probe.
        for (t, &c) in bind_terms.iter().zip(components) {
            match t {
                Term::Var(v) => {
                    let slot = &mut env[v.0 as usize];
                    if slot.is_some_and(|prev| prev != c) {
                        return;
                    }
                    *slot = Some(c);
                }
                Term::Const(k) => {
                    if *k != c {
                        return;
                    }
                }
            }
        }
        let mut retrieved = 0u64;
        if rel.unbound_out_vars.is_empty() {
            fire_seeded(
                self.program,
                rel.literals.iter().map(|&li| &rule.body[li]),
                emit_terms,
                env,
                &WholeDb(&self.db),
                counters,
                &mut |t| {
                    retrieved += 1;
                    out.push(tuples.intern(t));
                },
            )
            .expect("virtual-relation joins bind all built-ins");
            counters.tuples_retrieved += retrieved;
            return;
        }
        // Non-chain mode: unbound output variables range over the
        // materialized active domain, appended as extra body atoms.
        let mut body: Vec<&Literal> = rel.literals.iter().map(|&li| &rule.body[li]).collect();
        let dp = self
            .domain_pred
            .expect("domain relation materialized for non-chain programs");
        let domain_atoms: Vec<Literal> = rel
            .unbound_out_vars
            .iter()
            .filter(|&&v| !bind_terms.iter().any(|t| t.as_var() == Some(v)))
            .map(|&v| Literal::Atom(Atom::new(dp, vec![Term::Var(v)])))
            .collect();
        body.extend(domain_atoms.iter());
        fire_seeded(
            self.program,
            body.into_iter(),
            emit_terms,
            env,
            &WholeDb(&self.db),
            counters,
            &mut |t| {
                retrieved += 1;
                out.push(tuples.intern(t));
            },
        )
        .expect("virtual-relation joins bind all built-ins");
        counters.tuples_retrieved += retrieved;
    }

    /// One memoized direction of a virtual relation.  A racing thread
    /// may compute the same key concurrently; both produce identical
    /// outputs (the interner dedups tuple constants under its lock),
    /// so last-write-wins insertion is safe.
    fn cached_probe(
        &self,
        r: Pred,
        key: Const,
        forward: bool,
        out: &mut Vec<Const>,
        counters: &mut Counters,
    ) {
        counters.index_probes += 1;
        let memo_key = (r, key, forward);
        if let Some(cached) = self.space.memo.get(&memo_key) {
            out.extend_from_slice(&cached);
            return;
        }
        let rel = &self.virtuals[&r];
        let start = out.len();
        if forward {
            self.probe(rel, &rel.in_terms, &rel.out_terms, key, out, counters);
        } else {
            self.probe(rel, &rel.out_terms, &rel.in_terms, key, out, counters);
        }
        // Bounded: a full memo refuses new keys; the probe above
        // already produced the outputs either way.
        if !self.space.memo.would_refuse(&memo_key) {
            self.space
                .memo
                .insert(memo_key, Arc::new(out[start..].to_vec()));
        }
    }
}

impl TupleSource for VirtualSource<'_> {
    fn successors(&self, r: Pred, u: Const, out: &mut Vec<Const>, counters: &mut Counters) {
        self.cached_probe(r, u, true, out, counters);
    }

    fn predecessors(&self, r: Pred, v: Const, out: &mut Vec<Const>, counters: &mut Counters) {
        self.cached_probe(r, v, false, out, counters);
    }

    /// Virtual relations cannot be enumerated without bindings; all-pairs
    /// queries over the transformed program always anchor at the query's
    /// bound tuple (possibly the empty tuple `t()`), so this is unused.
    fn first_column(&self, _r: Pred, _out: &mut Vec<Const>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adornment::adorn;
    use crate::transform::transform;
    use rq_common::ConstValue;
    use rq_datalog::{parse_program, Query};

    #[test]
    fn probe_in_relation_of_flight_program() {
        let mut program = parse_program(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,900,ams,1130).\n\
             flight(ams,1200,cdg,1330).\n\
             flight(ams,1100,cdg,1230).\n\
             is_deptime(900). is_deptime(1200). is_deptime(1100).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "cnx(hel, 900, D, AT)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        let db = Database::from_program(&program);
        let src = VirtualSource::new(&program, &db, &bin);

        let in_pred = *bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "in-r1")
            .map(|(p, _)| p)
            .unwrap();
        let hel = program.consts.get(&ConstValue::Str("hel".into())).unwrap();
        let t900 = program.consts.get(&ConstValue::Int(900)).unwrap();
        let anchor = src.intern_tuple(vec![hel, t900]);
        let mut out = Vec::new();
        let mut counters = Counters::new();
        src.successors(in_pred, anchor, &mut out, &mut counters);
        // From (hel, 900): flight(hel,900,ams,1130), connections with
        // AT1=1130 < DT1 ∈ {1200}: → t(ams, 1200).  (1100 < 1130 fails.)
        let rendered: Vec<String> = out.iter().map(|&c| src.display_const(c)).collect();
        assert_eq!(rendered, vec!["t(ams,1200)"]);
        assert!(counters.tuples_retrieved > 0);
    }

    #[test]
    fn repeated_probe_hits_memo() {
        let mut program = parse_program(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b0(a,c). b1(a,c).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        let db = Database::from_program(&program);
        let src = VirtualSource::new(&program, &db, &bin);
        let base = *bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "base-r0")
            .map(|(p, _)| p)
            .unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let anchor = src.intern_tuple(vec![a]);
        let mut out = Vec::new();
        let mut c1 = Counters::new();
        src.successors(base, anchor, &mut out, &mut c1);
        let first = out.clone();
        out.clear();
        let mut c2 = Counters::new();
        src.successors(base, anchor, &mut out, &mut c2);
        assert_eq!(out, first);
        // Second probe answers from the memo: no base tuples touched.
        assert_eq!(c2.tuples_retrieved, 0);
        assert!(c1.tuples_retrieved > 0);
    }

    #[test]
    fn shared_space_memoizes_across_sources() {
        // Two sources (two queries of one epoch) over one space: the
        // second source's probe answers from the first one's memo.
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<ProbeSpace>();
        assert_sync::<VirtualSource<'_>>();

        let mut program = parse_program(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b0(a,c). b1(a,c).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        let db = Database::from_program(&program);
        let space = std::sync::Arc::new(ProbeSpace::new(&program));
        let base = *bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "base-r0")
            .map(|(p, _)| p)
            .unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();

        let first_source = VirtualSource::with_space(&program, &db, &bin, Arc::clone(&space));
        let anchor = first_source.intern_tuple(vec![a]);
        let mut out = Vec::new();
        let mut c1 = Counters::new();
        first_source.successors(base, anchor, &mut out, &mut c1);
        assert!(c1.tuples_retrieved > 0);
        let first = out.clone();
        drop(first_source);

        let second_source = VirtualSource::with_space(&program, &db, &bin, Arc::clone(&space));
        let anchor_again = second_source.intern_tuple(vec![a]);
        assert_eq!(anchor, anchor_again, "shared interner keeps ids stable");
        out.clear();
        let mut c2 = Counters::new();
        second_source.successors(base, anchor_again, &mut out, &mut c2);
        assert_eq!(out, first);
        assert_eq!(c2.tuples_retrieved, 0, "served from the shared memo");
        let stats = space.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn probe_space_entry_cap_stops_recording_not_probing() {
        let mut program = parse_program(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b0(b,c). b0(c,d). b1(a,c).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        let db = Database::from_program(&program);
        let space = Arc::new(ProbeSpace::with_capacity(&program, 1));
        let src = VirtualSource::with_space(&program, &db, &bin, Arc::clone(&space));
        let base = *bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "base-r0")
            .map(|(p, _)| p)
            .unwrap();
        let mut counters = Counters::new();
        for name in ["a", "b", "c"] {
            let c = program
                .consts
                .get(&ConstValue::Str((*name).into()))
                .unwrap();
            let anchor = src.intern_tuple(vec![c]);
            let mut out = Vec::new();
            src.successors(base, anchor, &mut out, &mut counters);
            assert!(!out.is_empty(), "capped memo must still probe ({name})");
        }
        assert_eq!(
            space.stats().entries,
            1,
            "cap refuses keys beyond the first"
        );
    }

    #[test]
    fn forked_space_patch_matches_recomputation_and_leaves_parent_clean() {
        let mut program = parse_program(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,900,ams,1130).\n\
             flight(ams,1200,cdg,1330).\n\
             is_deptime(900). is_deptime(1200).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "cnx(hel, 900, D, AT)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        let db = Database::from_program(&program);
        let space = Arc::new(ProbeSpace::new(&program));
        let src = VirtualSource::with_space(&program, &db, &bin, Arc::clone(&space));

        let in_pred = *bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "in-r1")
            .map(|(p, _)| p)
            .unwrap();
        let hel = program.consts.get(&ConstValue::Str("hel".into())).unwrap();
        let t900 = program.consts.get(&ConstValue::Int(900)).unwrap();
        let anchor = src.intern_tuple(vec![hel, t900]);
        let mut warm = Vec::new();
        let mut counters = Counters::new();
        src.successors(in_pred, anchor, &mut warm, &mut counters);
        assert_eq!(warm.len(), 1, "old epoch sees one onward connection");

        // The publish adds is_deptime(1300): (hel,900)'s flight arriving
        // at 1130 now also connects onward at departure time 1300.
        let extended = parse_program(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,900,ams,1130).\n\
             flight(ams,1200,cdg,1330).\n\
             is_deptime(900). is_deptime(1200). is_deptime(1300).",
        )
        .unwrap();
        assert_eq!(program.preds.len(), extended.preds.len());
        let db_new = Database::from_program(&extended);
        let dep = extended.pred_by_name("is_deptime").unwrap();
        let t1300 = extended.consts.get(&ConstValue::Int(1300)).unwrap();
        let mut delta: FxHashMap<Pred, Relation> = FxHashMap::default();
        delta.insert(dep, Relation::from_rows(1, [&[t1300][..]]));

        let fork = space.fork();
        let pairs = delta_pairs(&extended, &db_new, &bin, &fork, &delta, &mut counters)
            .expect("chain program is delta-enumerable");
        let in_pairs = &pairs[&in_pred];
        assert_eq!(in_pairs.len(), 1);
        assert_eq!(in_pairs[0].0, anchor, "new pair hangs off the warm key");
        let added = fork.patch_pairs(in_pred, in_pairs);
        assert_eq!(added, 1, "forward entry patched; backward key absent");

        // The patched fork serves the repaired row from its memo and
        // matches a cold recomputation over the new database exactly.
        let fork = Arc::new(fork);
        let repaired_src = VirtualSource::with_space(&extended, &db_new, &bin, Arc::clone(&fork));
        let mut patched = Vec::new();
        let mut c_patched = Counters::new();
        repaired_src.successors(in_pred, anchor, &mut patched, &mut c_patched);
        assert_eq!(c_patched.tuples_retrieved, 0, "served from the memo");
        let cold_src = VirtualSource::new(&extended, &db_new, &bin);
        let cold_anchor = cold_src.intern_tuple(vec![hel, t900]);
        let mut cold = Vec::new();
        cold_src.successors(in_pred, cold_anchor, &mut cold, &mut Counters::new());
        let render = |src: &VirtualSource<'_>, rows: &[rq_common::Const]| -> Vec<String> {
            let mut v: Vec<String> = rows.iter().map(|&c| src.display_const(c)).collect();
            v.sort();
            v
        };
        assert_eq!(render(&repaired_src, &patched), render(&cold_src, &cold));
        assert_eq!(render(&repaired_src, &patched).len(), 2);

        // The parent space is untouched: the old epoch still sees the
        // pre-publish row set.
        let mut old = Vec::new();
        src.successors(in_pred, anchor, &mut old, &mut Counters::new());
        assert_eq!(old, warm);
    }

    #[test]
    fn probe_respects_input_constants_mismatch() {
        let mut program = parse_program(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b1(a,c).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        let db = Database::from_program(&program);
        let src = VirtualSource::new(&program, &db, &bin);
        // Probe base-r0 (for bin-p^bf) with a key of wrong arity: no
        // results, no panic.
        let base = *bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "base-r0")
            .map(|(p, _)| p)
            .unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let b = program.consts.get(&ConstValue::Str("b".into())).unwrap();
        let bad = src.intern_tuple(vec![a, b]);
        let mut out = Vec::new();
        let mut counters = Counters::new();
        src.successors(base, bad, &mut out, &mut counters);
        assert!(out.is_empty());
    }
}
