//! The §4 transformation: an adorned linear program becomes a
//! binary-chain equation system over virtual binary predicates.
//!
//! For each adorned predicate `p^a` a binary predicate `bin-p^a` is
//! defined whose tuples are pairs `(t(X^b), t(X^f))` — the bound and free
//! projections of `p`'s tuples.  Each adorned rule `r` contributes:
//!
//! * `base-r` (no derived literal): `base-r(t(X^b), t(X^f)) :- body`,
//!   giving the alternative `bin-p^a ⊇ base-r`;
//! * otherwise `in-r(t(X^b), t(Z^b)) :- before-literals` and
//!   `out-r(t(Z^f), t(X^f)) :- after-literals`, giving
//!   `bin-p^a ⊇ in-r · bin-q^d · out-r`, where `in-r`/`out-r` are omitted
//!   when their body is empty and their head is an identity.
//!
//! The virtual relations are never materialized: `rq_engine` pulls their
//! tuples on demand through [`crate::source::VirtualSource`], which joins
//! the original database with the bound side already instantiated — this
//! is how the query bindings restrict the facts consulted.

use crate::adornment::{AdornedBody, AdornedPred, AdornedProgram};
use rq_common::{FxHashMap, FxHashSet, Pred, Var};
use rq_datalog::{Program, Term};
use rq_relalg::{EqSystem, Expr};

/// What a virtual relation computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtualKind {
    /// `base-r`: the whole rule body.
    Base,
    /// `in-r`: the before-literals.
    In,
    /// `out-r`: the after-literals.
    Out,
}

/// A virtual binary relation over tuple constants, defined by a join of
/// (a subset of) one rule's body against the original database.
#[derive(Debug, Clone)]
pub struct VirtualRel {
    /// Role of the relation.
    pub kind: VirtualKind,
    /// The underlying rule.
    pub rule_idx: usize,
    /// Terms whose instantiation forms the first (input) tuple.
    pub in_terms: Vec<Term>,
    /// Terms whose instantiation forms the second (output) tuple.
    pub out_terms: Vec<Term>,
    /// Indices of the body literals making up the defining join.
    pub literals: Vec<usize>,
    /// Output variables not bound by the input tuple or the join
    /// literals.  Empty for chain programs; non-empty only in the
    /// unchecked mode that reproduces the paper's §4 counterexample,
    /// where such variables range over the active domain.
    pub unbound_out_vars: Vec<Var>,
}

/// The result of the transformation.
#[derive(Debug, Clone)]
pub struct BinaryProgram {
    /// Equations for the `bin-p^a` predicates.
    pub system: EqSystem,
    /// The binary predicate answering the query.
    pub query_bin: Pred,
    /// Definitions of the virtual base relations.
    pub virtuals: FxHashMap<Pred, VirtualRel>,
    /// Display names for all fresh predicates.
    pub names: FxHashMap<Pred, String>,
    /// The query's bound argument positions (into the original predicate).
    pub bound_positions: Vec<usize>,
    /// The query's free argument positions.
    pub free_positions: Vec<usize>,
}

impl BinaryProgram {
    /// Resolve a predicate name (virtual predicates included).
    pub fn name(&self, program: &Program, p: Pred) -> String {
        self.names
            .get(&p)
            .cloned()
            .unwrap_or_else(|| program.pred_name(p).to_string())
    }

    /// Every *real* predicate of `program` the transformed machine can
    /// consult: the body literals of every virtual relation's defining
    /// join.  The `bin-`/`base-r`/`in-r`/`out-r` predicates are fresh
    /// ids with no storage of their own — invalidation must follow them
    /// back to the base relations they read on demand, which is exactly
    /// this set.
    pub fn base_read_set(&self, program: &Program) -> FxHashSet<Pred> {
        let mut out = FxHashSet::default();
        for rel in self.virtuals.values() {
            let rule = &program.rules[rel.rule_idx];
            for &li in &rel.literals {
                if let rq_datalog::Literal::Atom(a) = &rule.body[li] {
                    out.insert(a.pred);
                }
            }
            // Unbound output variables range over the active domain,
            // which any relation can feed (non-chain mode only).
            if !rel.unbound_out_vars.is_empty() {
                out.extend(program.preds.ids());
            }
        }
        out
    }

    /// Render the equation system with virtual-predicate names.
    pub fn display_system(&self, program: &Program) -> String {
        let name = |p: Pred| self.name(program, p);
        let mut out = String::new();
        for &p in &self.system.lhs {
            out.push_str(&format!(
                "{} = {}\n",
                name(p),
                self.system.rhs[&p].display(&name)
            ));
        }
        out
    }
}

/// Run the transformation on an adorned program.
pub fn transform(program: &Program, adorned: &AdornedProgram) -> BinaryProgram {
    let mut next_pred = program.preds.len() as u32;
    let mut fresh = |name: String, names: &mut FxHashMap<Pred, String>| -> Pred {
        let p = Pred(next_pred);
        next_pred += 1;
        names.insert(p, name);
        p
    };

    let mut names: FxHashMap<Pred, String> = FxHashMap::default();
    let mut bin_preds: FxHashMap<AdornedPred, Pred> = FxHashMap::default();
    let mut bin_order: Vec<AdornedPred> = Vec::new();
    for rule in &adorned.rules {
        for ap in [Some(rule.head), rule.body_child()].into_iter().flatten() {
            if let std::collections::hash_map::Entry::Vacant(e) = bin_preds.entry(ap) {
                let name = format!("bin-{}^{}", program.pred_name(ap.pred), ap.adornment);
                e.insert(fresh(name, &mut names));
                bin_order.push(ap);
            }
        }
    }

    let mut virtuals: FxHashMap<Pred, VirtualRel> = FxHashMap::default();
    let mut alternatives: FxHashMap<Pred, Vec<Expr>> = FxHashMap::default();
    for ap in &bin_order {
        alternatives.insert(bin_preds[ap], Vec::new());
    }

    for (ari, ar) in adorned.rules.iter().enumerate() {
        let rule = &program.rules[ar.rule_idx];
        let head_bin = bin_preds[&ar.head];
        let head_bound_terms: Vec<Term> = ar
            .head
            .adornment
            .bound_positions()
            .into_iter()
            .map(|i| rule.head.args[i])
            .collect();
        let head_free_terms: Vec<Term> = ar
            .head
            .adornment
            .free_positions()
            .into_iter()
            .map(|i| rule.head.args[i])
            .collect();
        match &ar.body {
            AdornedBody::Base => {
                let literals: Vec<usize> = (0..rule.body.len()).collect();
                let rel = VirtualRel {
                    kind: VirtualKind::Base,
                    rule_idx: ar.rule_idx,
                    in_terms: head_bound_terms,
                    out_terms: head_free_terms,
                    literals,
                    unbound_out_vars: Vec::new(),
                };
                let p = fresh(format!("base-r{ari}"), &mut names);
                virtuals.insert(p, finish_rel(rule, rel));
                alternatives
                    .get_mut(&head_bin)
                    .expect("bin pred registered")
                    .push(Expr::Sym(p));
            }
            AdornedBody::Recursive {
                derived_idx,
                child,
                before,
                after,
            } => {
                let atom = rule.body[*derived_idx].as_atom().expect("derived atom");
                let child_bound_terms: Vec<Term> = child
                    .adornment
                    .bound_positions()
                    .into_iter()
                    .map(|i| atom.args[i])
                    .collect();
                let child_free_terms: Vec<Term> = child
                    .adornment
                    .free_positions()
                    .into_iter()
                    .map(|i| atom.args[i])
                    .collect();
                let mut factors: Vec<Expr> = Vec::with_capacity(3);
                // in-r, unless it is the identity.
                if !(before.is_empty() && head_bound_terms == child_bound_terms) {
                    let rel = VirtualRel {
                        kind: VirtualKind::In,
                        rule_idx: ar.rule_idx,
                        in_terms: head_bound_terms.clone(),
                        out_terms: child_bound_terms,
                        literals: before.clone(),
                        unbound_out_vars: Vec::new(),
                    };
                    let p = fresh(format!("in-r{ari}"), &mut names);
                    virtuals.insert(p, finish_rel(rule, rel));
                    factors.push(Expr::Sym(p));
                }
                factors.push(Expr::Sym(bin_preds[child]));
                // out-r, unless it is the identity.
                if !(after.is_empty() && child_free_terms == head_free_terms) {
                    let rel = VirtualRel {
                        kind: VirtualKind::Out,
                        rule_idx: ar.rule_idx,
                        in_terms: child_free_terms,
                        out_terms: head_free_terms,
                        literals: after.clone(),
                        unbound_out_vars: Vec::new(),
                    };
                    let p = fresh(format!("out-r{ari}"), &mut names);
                    virtuals.insert(p, finish_rel(rule, rel));
                    factors.push(Expr::Sym(p));
                }
                alternatives
                    .get_mut(&head_bin)
                    .expect("bin pred registered")
                    .push(Expr::cat(factors));
            }
        }
    }

    let system = EqSystem::new(bin_order.iter().map(|ap| {
        let p = bin_preds[ap];
        let alts = alternatives.remove(&p).expect("registered");
        (p, Expr::union(alts))
    }));

    BinaryProgram {
        system,
        query_bin: bin_preds[&adorned.query],
        virtuals,
        names,
        bound_positions: adorned.query.adornment.bound_positions(),
        free_positions: adorned.query.adornment.free_positions(),
    }
}

/// Compute the unbound output variables of a virtual relation: output
/// variables bound neither by the input tuple nor by the join literals.
fn finish_rel(rule: &rq_datalog::Rule, mut rel: VirtualRel) -> VirtualRel {
    let mut bound: FxHashSet<Var> = rel.in_terms.iter().filter_map(|t| t.as_var()).collect();
    for &li in &rel.literals {
        if let rq_datalog::Literal::Atom(a) = &rule.body[li] {
            bound.extend(a.vars());
        }
    }
    rel.unbound_out_vars = rel
        .out_terms
        .iter()
        .filter_map(|t| t.as_var())
        .filter(|v| !bound.contains(v))
        .collect::<FxHashSet<_>>()
        .into_iter()
        .collect();
    rel
}

impl crate::adornment::AdornedRule {
    /// The child adorned predicate of a recursive rule.
    pub fn body_child(&self) -> Option<AdornedPred> {
        match &self.body {
            AdornedBody::Base => None,
            AdornedBody::Recursive { child, .. } => Some(*child),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adornment::adorn;
    use rq_datalog::{parse_program, Query};

    fn build(src: &str, query: &str) -> (Program, BinaryProgram) {
        let mut program = parse_program(src).unwrap();
        let q = Query::parse(&mut program, query).unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let bin = transform(&program, &adorned);
        (program, bin)
    }

    #[test]
    fn flight_program_transform_matches_paper() {
        // The paper derives: bin-cnx^bbff = base-r1 ∪ in-r2 · bin-cnx^bbff
        // (out-r2 omitted as identity).
        let (program, bin) = build(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,900,ams,1130). is_deptime(900).",
            "cnx(hel, 900, D, AT)",
        );
        let text = bin.display_system(&program);
        assert_eq!(text, "bin-cnx^bbff = base-r0 U in-r1.bin-cnx^bbff\n");
        // Two virtual relations, no out-r.
        assert_eq!(bin.virtuals.len(), 2);
        let kinds: Vec<VirtualKind> = bin.virtuals.values().map(|v| v.kind).collect();
        assert!(kinds.contains(&VirtualKind::Base));
        assert!(kinds.contains(&VirtualKind::In));
        assert!(bin.virtuals.values().all(|v| v.unbound_out_vars.is_empty()));
    }

    #[test]
    fn naughton_transform_matches_paper() {
        // bin-p^bf = base-r1 ∪ in-r2 · bin-p^fb
        // bin-p^fb = base-r3 ∪ bin-p^bf · out-r4
        let (program, bin) = build(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b1(a,c).",
            "p(a, Y)",
        );
        let text = bin.display_system(&program);
        assert!(
            text.contains("bin-p^bf = base-r0 U in-r1.bin-p^fb"),
            "{text}"
        );
        assert!(
            text.contains("bin-p^fb = base-r2 U bin-p^bf.out-r3"),
            "{text}"
        );
        // in-r for the bf rule reads b1; out-r for the fb rule reads b1.
        assert_eq!(bin.virtuals.len(), 4);
    }

    #[test]
    fn base_r_for_fb_swaps_tuple_sides() {
        // For p^fb the base rule is base-r(t(Y), t(X)) :- b0(X,Y): the
        // bound side is the *second* head argument.
        let (program, bin) = build(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b1(a,c).",
            "p(a, Y)",
        );
        // Find the base-r0 serving bin-p^fb: its in_terms must be the
        // head's second variable.
        let fb_bin = bin
            .names
            .iter()
            .find(|(_, n)| n.as_str() == "bin-p^fb")
            .map(|(&p, _)| p)
            .unwrap();
        let base_preds: Vec<Pred> = bin.system.rhs[&fb_bin]
            .alternatives()
            .iter()
            .filter_map(|e| match e {
                Expr::Sym(p) if bin.virtuals.contains_key(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(base_preds.len(), 1);
        let rel = &bin.virtuals[&base_preds[0]];
        let rule = &program.rules[rel.rule_idx];
        // in = [Y], out = [X] (positions 1 and 0 of the head).
        assert_eq!(rel.in_terms, vec![rule.head.args[1]]);
        assert_eq!(rel.out_terms, vec![rule.head.args[0]]);
    }

    #[test]
    fn non_chain_rule_has_unbound_out_vars() {
        // §4's counterexample: out-r's output Y is bound by nothing on
        // the after side.
        let (_, bin) = build(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Y), p(Y,Z).\n\
             b1(a,b). b0(b,c).",
            "p(a, Y)",
        );
        let out_rel = bin
            .virtuals
            .values()
            .find(|v| v.kind == VirtualKind::Out)
            .expect("out-r exists");
        assert_eq!(out_rel.unbound_out_vars.len(), 1);
    }

    #[test]
    fn same_generation_binary_chain() {
        let (program, bin) = build(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,b). flat(b,c). down(c,d).",
            "sg(a, Y)",
        );
        let text = bin.display_system(&program);
        assert_eq!(text, "bin-sg^bf = base-r0 U in-r1.bin-sg^bf.out-r1\n");
    }
}
