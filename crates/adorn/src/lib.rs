//! §4 of the paper: evaluating a subset of n-ary linearly recursive
//! queries by transformation to binary-chain programs.
//!
//! * [`mod@adornment`] — adorned programs (sideways information passing,
//!   conditions (1)–(5)) and the chain condition of Lemma 6;
//! * [`mod@transform`] — the `bin-p^a` / `base-r` / `in-r` / `out-r`
//!   construction producing a binary-chain equation system over tuple
//!   constants;
//! * [`mod@source`] — demand-driven retrieval of the virtual relations by
//!   joining the original database with the query bindings instantiated;
//! * [`mod@api`] — the end-to-end query entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adornment;
pub mod api;
pub mod source;
pub mod transform;

pub use adornment::{
    adorn, adorn_for, chain_violations, condition3_violations, display_adorned, AdornError,
    AdornedBody, AdornedPred, AdornedProgram, AdornedRule, Adornment,
};
pub use api::{
    answer_query, answer_query_unchecked, bottom_up_counters, evaluate_nary, evaluate_nary_shared,
    oracle_rows, plan_nary_query, plan_nary_query_unchecked, NaryPlan, QueryAnswer, QueryError,
};
pub use source::{delta_pairs, ProbeSpace, ProbeStats, VirtualSource, DEFAULT_PROBE_ENTRIES};
pub use transform::{transform, BinaryProgram, VirtualKind, VirtualRel};
