//! Adorned programs (§4): sideways information passing for linear Datalog
//! programs with at most one derived literal per rule body.
//!
//! An adornment for an n-ary predicate is a string over `{b, f}` marking
//! which argument positions carry bindings.  Starting from the query's
//! binding pattern, each rule is adorned by partitioning its base body
//! literals around the derived literal into a *before* set (connected to
//! the bound head variables — conditions (1)–(5) of §4) and an *after*
//! set; the derived literal's adornment marks bound every argument filled
//! from before-literals or bound head positions.

use rq_common::{FxHashMap, FxHashSet, Pred, Var};
use rq_datalog::{Literal, Program, Query, Rule};
use std::fmt;

/// A `{b,f}` string as a bitmask (bit i set ⇔ position i bound).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adornment {
    mask: u32,
    arity: u8,
}

impl Adornment {
    /// Build from bound positions.
    pub fn from_bound(arity: usize, bound: impl IntoIterator<Item = usize>) -> Self {
        debug_assert!(arity <= 32);
        let mut mask = 0;
        for b in bound {
            debug_assert!(b < arity);
            mask |= 1 << b;
        }
        Self {
            mask,
            arity: arity as u8,
        }
    }

    /// Build from a query's argument pattern.
    pub fn of_query(query: &Query) -> Self {
        Self::from_bound(query.args.len(), query.bound_positions())
    }

    /// Arity.
    pub fn arity(self) -> usize {
        self.arity as usize
    }

    /// Whether position `i` is bound.
    pub fn is_bound(self, i: usize) -> bool {
        self.mask & (1 << i) != 0
    }

    /// Bound positions, ascending.
    pub fn bound_positions(self) -> Vec<usize> {
        (0..self.arity()).filter(|&i| self.is_bound(i)).collect()
    }

    /// Free positions, ascending.
    pub fn free_positions(self) -> Vec<usize> {
        (0..self.arity()).filter(|&i| !self.is_bound(i)).collect()
    }

    /// The all-free adornment.
    pub fn all_free(arity: usize) -> Self {
        Self::from_bound(arity, [])
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.arity() {
            write!(f, "{}", if self.is_bound(i) { 'b' } else { 'f' })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A predicate with an adornment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AdornedPred {
    /// The predicate.
    pub pred: Pred,
    /// Its adornment.
    pub adornment: Adornment,
}

/// The body of an adorned rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdornedBody {
    /// No derived literal: the whole body defines a `base-r` relation.
    Base,
    /// One derived literal at body index `derived_idx`, adorned `child`;
    /// the remaining literal indices are split into `before` and `after`.
    Recursive {
        /// Index of the derived literal in the rule body.
        derived_idx: usize,
        /// The derived literal's adorned predicate.
        child: AdornedPred,
        /// Indices of the before-literals (base literals and built-ins
        /// evaluable from the bound side) — the paper's `b1 … bi`.
        before: Vec<usize>,
        /// Indices of the after-literals — `b_{i+1} … b_n`.
        after: Vec<usize>,
    },
}

/// One adorned rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedRule {
    /// The adorned head predicate.
    pub head: AdornedPred,
    /// Index of the underlying rule in the program.
    pub rule_idx: usize,
    /// The adorned body.
    pub body: AdornedBody,
}

/// A complete adorned program for one query.
#[derive(Clone, Debug)]
pub struct AdornedProgram {
    /// The query's adorned predicate.
    pub query: AdornedPred,
    /// All adorned rules, in generation order.
    pub rules: Vec<AdornedRule>,
}

/// Why adornment failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdornError {
    /// A rule has more than one derived body literal (program not in the
    /// §4 special form).
    NotLinear(usize),
    /// A rule head contains a constant (unsupported).
    ConstantInHead(usize),
    /// A built-in literal cannot be assigned to either side of the
    /// derived literal.
    StrandedBuiltin(usize),
    /// The queried predicate has no rules.
    NoRulesForQuery,
}

impl fmt::Display for AdornError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdornError::NotLinear(r) => write!(f, "rule {r} has several derived body literals"),
            AdornError::ConstantInHead(r) => write!(f, "rule {r} has a constant in its head"),
            AdornError::StrandedBuiltin(r) => {
                write!(
                    f,
                    "rule {r}: built-in belongs to neither side of the recursion"
                )
            }
            AdornError::NoRulesForQuery => write!(f, "query predicate has no rules"),
        }
    }
}

impl std::error::Error for AdornError {}

/// Construct the adorned program for `program` and the query's binding
/// pattern, following the §4 generation process.
pub fn adorn(program: &Program, query: &Query) -> Result<AdornedProgram, AdornError> {
    adorn_for(program, query.pred, Adornment::of_query(query))
}

/// [`adorn`] from a bare `(predicate, adornment)` pair — the planning
/// form: the generation process depends only on which positions are
/// bound, never on the bound values, so one adorned program serves
/// every query with the same binding pattern.
pub fn adorn_for(
    program: &Program,
    pred: Pred,
    adornment: Adornment,
) -> Result<AdornedProgram, AdornError> {
    let root = AdornedPred { pred, adornment };
    if program.rules_for(pred).next().is_none() {
        return Err(AdornError::NoRulesForQuery);
    }
    let mut rules: Vec<AdornedRule> = Vec::new();
    let mut processed: FxHashSet<AdornedPred> = FxHashSet::default();
    let mut worklist: Vec<AdornedPred> = vec![root];
    while let Some(ap) = worklist.pop() {
        if !processed.insert(ap) {
            continue;
        }
        for (rule_idx, rule) in program.rules.iter().enumerate() {
            if rule.head.pred != ap.pred {
                continue;
            }
            let adorned = adorn_rule(program, rule, rule_idx, ap)?;
            if let AdornedBody::Recursive { child, .. } = &adorned.body {
                if !processed.contains(child) {
                    worklist.push(*child);
                }
            }
            rules.push(adorned);
        }
    }
    Ok(AdornedProgram { query: root, rules })
}

fn adorn_rule(
    program: &Program,
    rule: &Rule,
    rule_idx: usize,
    head: AdornedPred,
) -> Result<AdornedRule, AdornError> {
    // Head variables per position; constants unsupported.
    let mut head_vars: Vec<Var> = Vec::with_capacity(rule.head.args.len());
    for t in &rule.head.args {
        match t.as_var() {
            Some(v) => head_vars.push(v),
            None => return Err(AdornError::ConstantInHead(rule_idx)),
        }
    }
    let bound_head_vars: FxHashSet<Var> = head
        .adornment
        .bound_positions()
        .into_iter()
        .map(|i| head_vars[i])
        .collect();

    // Locate derived literals.
    let derived: Vec<usize> = rule
        .body
        .iter()
        .enumerate()
        .filter(|(_, l)| l.as_atom().is_some_and(|a| program.is_derived(a.pred)))
        .map(|(i, _)| i)
        .collect();
    if derived.len() > 1 {
        return Err(AdornError::NotLinear(rule_idx));
    }
    if derived.is_empty() {
        return Ok(AdornedRule {
            head,
            rule_idx,
            body: AdornedBody::Base,
        });
    }
    let derived_idx = derived[0];
    let derived_atom = rule.body[derived_idx]
        .as_atom()
        .expect("derived index points at an atom");

    // Safety: every built-in variable must occur in some ordinary body
    // literal of the rule (the paper's restriction on built-ins).
    let all_atom_vars: FxHashSet<Var> = rule
        .body
        .iter()
        .enumerate()
        .filter(|&(i, l)| i != derived_idx && matches!(l, Literal::Atom(_)))
        .flat_map(|(_, l)| l.vars())
        .collect();
    for (li, lit) in rule.body.iter().enumerate() {
        if li == derived_idx || matches!(lit, Literal::Atom(_)) {
            continue;
        }
        if lit.vars().iter().any(|v| !all_atom_vars.contains(v)) {
            return Err(AdornError::StrandedBuiltin(rule_idx));
        }
    }

    // All non-derived body literals — base atoms *and* built-ins — take
    // part in the connectivity analysis.  In the paper's flight example
    // the comparison `AT1 < DT1` is what links `flight(S,DT,D1,AT1)` to
    // `is_deptime(DT1)`, pulling both onto the before side.
    let body_lits: Vec<usize> = (0..rule.body.len()).filter(|&i| i != derived_idx).collect();

    // Connected components of the literals under shared variables.
    let comp = literal_components(rule, &body_lits);

    // A component is bound-connected if any of its literals shares a
    // variable with a bound head position (condition (4)).
    let ncomp = comp.values().copied().max().map_or(0, |m| m + 1);
    let mut bound_comp = vec![false; ncomp];
    for &li in &body_lits {
        let lit_vars = rule.body[li].vars();
        if lit_vars.iter().any(|v| bound_head_vars.contains(v)) {
            bound_comp[comp[&li]] = true;
        }
    }

    // Condition (3) in the paper requires the before-literals to form a
    // *single* connected set.  We generalize mildly: several
    // bound-connected components are merged into one before set (their
    // conjunction is still joined with every component anchored to a
    // binding, e.g. `sg(a,b)` binds the up side and the down side
    // separately).  The strict condition is reported by
    // [`condition3_violations`] for callers that want the paper's exact
    // class.
    let before: Vec<usize> = body_lits
        .iter()
        .copied()
        .filter(|li| bound_comp[comp[li]])
        .collect();
    let after: Vec<usize> = body_lits
        .iter()
        .copied()
        .filter(|li| !bound_comp[comp[li]])
        .collect();

    // Variables bound on the before side: before-literal variables plus
    // bound head variables (condition (5)).
    let mut before_vars: FxHashSet<Var> = bound_head_vars.clone();
    for &li in &before {
        before_vars.extend(rule.body[li].vars());
    }

    // The derived literal's adornment (condition (5)): bound where the
    // argument is a variable bound on the before side (or a constant).
    let child_bound: Vec<usize> = derived_atom
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| match t.as_var() {
            Some(v) => before_vars.contains(&v),
            None => true,
        })
        .map(|(i, _)| i)
        .collect();
    let child = AdornedPred {
        pred: derived_atom.pred,
        adornment: Adornment::from_bound(derived_atom.args.len(), child_bound),
    };

    Ok(AdornedRule {
        head,
        rule_idx,
        body: AdornedBody::Recursive {
            derived_idx,
            child,
            before,
            after,
        },
    })
}

/// Union-find over the base literals of a rule: two literals are joined
/// when they share a variable (the paper's "directly connected").
fn literal_components(rule: &Rule, base_lits: &[usize]) -> FxHashMap<usize, usize> {
    let mut parent: FxHashMap<usize, usize> = base_lits.iter().map(|&l| (l, l)).collect();
    fn find(parent: &mut FxHashMap<usize, usize>, x: usize) -> usize {
        let p = parent[&x];
        if p == x {
            return x;
        }
        let root = find(parent, p);
        parent.insert(x, root);
        root
    }
    let mut by_var: FxHashMap<Var, usize> = FxHashMap::default();
    for &li in base_lits {
        for v in rule.body[li].vars() {
            if let Some(&other) = by_var.get(&v) {
                let a = find(&mut parent, li);
                let b = find(&mut parent, other);
                parent.insert(a, b);
            } else {
                by_var.insert(v, li);
            }
        }
    }
    // Normalize to dense component ids.
    let mut dense: FxHashMap<usize, usize> = FxHashMap::default();
    let mut out = FxHashMap::default();
    for &li in base_lits {
        let root = find(&mut parent, li);
        let next = dense.len();
        let id = *dense.entry(root).or_insert(next);
        out.insert(li, id);
    }
    out
}

/// The chain condition of Lemma 6: in every recursive adorned rule, the
/// variables of the before-literals must all be distinct from the head
/// variables designated free.  Returns the offending rule indices.
pub fn chain_violations(program: &Program, adorned: &AdornedProgram) -> Vec<usize> {
    let mut out = Vec::new();
    for ar in &adorned.rules {
        let AdornedBody::Recursive { before, .. } = &ar.body else {
            continue;
        };
        let rule = &program.rules[ar.rule_idx];
        let free_head_vars: FxHashSet<Var> = ar
            .head
            .adornment
            .free_positions()
            .into_iter()
            .filter_map(|i| rule.head.args[i].as_var())
            .collect();
        let clash = before
            .iter()
            .flat_map(|&li| rule.body[li].vars())
            .any(|v| free_head_vars.contains(&v));
        if clash {
            out.push(ar.rule_idx);
        }
    }
    out
}

/// The paper's strict condition (3): in every recursive adorned rule the
/// before-literals must form a single connected set.  [`adorn`] accepts
/// rules whose before-set has several bound-connected components (their
/// conjunction still evaluates correctly); this advisory reports the rule
/// indices that fall outside the paper's exact class.
pub fn condition3_violations(program: &Program, adorned: &AdornedProgram) -> Vec<usize> {
    let mut out = Vec::new();
    for ar in &adorned.rules {
        let AdornedBody::Recursive {
            derived_idx,
            before,
            ..
        } = &ar.body
        else {
            continue;
        };
        if before.is_empty() {
            continue;
        }
        let rule = &program.rules[ar.rule_idx];
        let body_lits: Vec<usize> = (0..rule.body.len()).filter(|i| i != derived_idx).collect();
        let comp = literal_components(rule, &body_lits);
        let distinct: FxHashSet<usize> = before.iter().map(|li| comp[li]).collect();
        if distinct.len() > 1 {
            out.push(ar.rule_idx);
        }
    }
    out
}

/// Render an adorned program for debugging and tests, e.g.
/// `sg^bf(X,Y) :- up(X,X1), sg^bf(X1,Y1), down(Y1,Y).`
pub fn display_adorned(program: &Program, adorned: &AdornedProgram) -> String {
    let mut out = String::new();
    for ar in &adorned.rules {
        let rule = &program.rules[ar.rule_idx];
        let head = format!(
            "{}^{}({})",
            program.pred_name(ar.head.pred),
            ar.head.adornment,
            rule.head
                .args
                .iter()
                .map(|&t| rq_datalog::display_term(program, rule, t))
                .collect::<Vec<_>>()
                .join(",")
        );
        let mut parts: Vec<String> = Vec::new();
        match &ar.body {
            AdornedBody::Base => {
                for lit in &rule.body {
                    parts.push(rq_datalog::display_literal(program, rule, lit));
                }
            }
            AdornedBody::Recursive {
                derived_idx,
                child,
                before,
                after,
            } => {
                for &li in before {
                    parts.push(rq_datalog::display_literal(program, rule, &rule.body[li]));
                }
                let atom = rule.body[*derived_idx].as_atom().expect("derived atom");
                parts.push(format!(
                    "{}^{}({})",
                    program.pred_name(child.pred),
                    child.adornment,
                    atom.args
                        .iter()
                        .map(|&t| rq_datalog::display_term(program, rule, t))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
                for &li in after {
                    parts.push(rq_datalog::display_literal(program, rule, &rule.body[li]));
                }
            }
        }
        out.push_str(&format!("{head} :- {}.\n", parts.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    fn adorned_for(src: &str, query: &str) -> (Program, AdornedProgram) {
        let mut program = parse_program(src).unwrap();
        let q = Query::parse(&mut program, query).unwrap();
        let a = adorn(&program, &q).unwrap();
        (program, a)
    }

    #[test]
    fn adornment_display() {
        let a = Adornment::from_bound(4, [0, 1]);
        assert_eq!(a.to_string(), "bbff");
        assert_eq!(a.bound_positions(), vec![0, 1]);
        assert_eq!(a.free_positions(), vec![2, 3]);
        assert!(a.is_bound(0));
        assert!(!a.is_bound(2));
    }

    #[test]
    fn same_generation_bf_adornment() {
        // The paper's example: sg^bf propagates bf to the recursive call.
        let (program, adorned) = adorned_for(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,b). flat(b,c). down(c,d).",
            "sg(a, Y)",
        );
        let text = display_adorned(&program, &adorned);
        assert!(text.contains("sg^bf(X,Y) :- flat(X,Y)."));
        assert!(text.contains("sg^bf(X,Y) :- up(X,X1), sg^bf(X1,Y1), down(Y1,Y)."));
        // Only one adorned predicate: sg^bf.
        assert_eq!(adorned.rules.len(), 2);
        assert!(chain_violations(&program, &adorned).is_empty());
    }

    #[test]
    fn naughton_example_two_adornments() {
        // §4's second example [15]: p(X,Y) :- b0(X,Y);
        // p(X,Y) :- b1(X,Z), p(Y,Z).  Query p(a,Y) generates pbf and pfb.
        let (program, adorned) = adorned_for(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(a,b). b1(a,c).",
            "p(a, Y)",
        );
        let text = display_adorned(&program, &adorned);
        assert!(text.contains("p^bf(X,Y) :- b0(X,Y)."));
        assert!(text.contains("p^bf(X,Y) :- b1(X,Z), p^fb(Y,Z)."));
        assert!(text.contains("p^fb(X,Y) :- b0(X,Y)."));
        // In the fb rule the binding comes through Z: before = {b1(X,Z)}?
        // No: for p^fb the bound position is the second (Z); b1(X,Z)
        // shares Z → before = {b1}, child bound position = first arg of
        // p(Y,Z)... Y unbound, Z bound → p^fb again?  The paper gets
        // p^fb(X,Y) :- p^bf(Y,Z), b1(X,Z): before = ∅ (no literal shares
        // a bound var with... b1(X,Z) shares Z with the bound head
        // position 2 → bound-connected!  Let's check what we derive.
        assert!(chain_violations(&program, &adorned).is_empty());
        assert_eq!(adorned.rules.len(), 4, "{text}");
    }

    #[test]
    fn flight_example_adornment() {
        let (program, adorned) = adorned_for(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,900,ams,1130). is_deptime(900).",
            "cnx(hel, 900, D, AT)",
        );
        let text = display_adorned(&program, &adorned);
        assert!(
            text.contains("cnx^bbff(S,DT,D,AT) :- flight(S,DT,D,AT)."),
            "{text}"
        );
        // The recursive rule: before = {flight, is_deptime, AT1 < DT1},
        // the derived literal adorned bbff, empty after set.
        assert!(
            text.contains(
                "cnx^bbff(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx^bbff(D1,DT1,D,AT)."
            ),
            "{text}"
        );
        assert!(chain_violations(&program, &adorned).is_empty());
    }

    #[test]
    fn non_chain_program_detected() {
        // §4's counterexample: p(X,Y) :- b1(X,Y), p(Y,Z): the free head
        // variable Y occurs in the before-literal b1(X,Y).
        let (program, adorned) = adorned_for(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Y), p(Y,Z).\n\
             b1(a,b). b0(b,c).",
            "p(a, Y)",
        );
        let violations = chain_violations(&program, &adorned);
        assert_eq!(violations, vec![1]);
    }

    #[test]
    fn all_free_query_adorns_ff() {
        let (program, adorned) = adorned_for(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,b). flat(b,c). down(c,d).",
            "sg(X, Y)",
        );
        let text = display_adorned(&program, &adorned);
        // With nothing bound, both body parts are unbound: before = ∅ and
        // the child is ff as well.
        assert!(
            text.contains("sg^ff(X,Y) :- sg^ff(X1,Y1), up(X,X1), down(Y1,Y)."),
            "{text}"
        );
    }

    #[test]
    fn nonlinear_rejected() {
        let mut program = parse_program(
            "p(X,Z) :- p(X,Y), p(Y,Z).\n\
             p(X,Y) :- e(X,Y).\n\
             e(a,b).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        assert_eq!(adorn(&program, &q).unwrap_err(), AdornError::NotLinear(0));
    }

    #[test]
    fn constant_in_head_rejected() {
        let mut program = parse_program(
            "p(X,k) :- e(X,Y), p(Y,k).\n\
             p(X,Y) :- e(X,Y).\n\
             e(a,b).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        assert_eq!(
            adorn(&program, &q).unwrap_err(),
            AdornError::ConstantInHead(0)
        );
    }

    #[test]
    fn disconnected_before_set_is_advisory() {
        // Both u(X,A) and w(Y,B) touch bound head vars but share no
        // variable: the paper's strict condition (3) fails, but the
        // merged before-set still adorns (and evaluates) correctly.
        let mut program = parse_program(
            "p(X,Y,Z) :- u(X,A), w(Y,B), q(A,B,Z).\n\
             q(A,B,Z) :- e(A,B,Z).\n\
             p(X,Y,Z) :- e(X,Y,Z).\n\
             e(a,b,c). u(a,b). w(b,c).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, b, Z)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        assert_eq!(condition3_violations(&program, &adorned), vec![0]);
        // Both components feed the before set; the child gets bbf.
        let text = display_adorned(&program, &adorned);
        assert!(text.contains("q^bbf(A,B,Z)"), "{text}");
        assert!(chain_violations(&program, &adorned).is_empty());
    }

    #[test]
    fn both_bound_sg_adorns_bb() {
        // sg(a,b): up anchors to X, down anchors to Y — two disconnected
        // bound components, merged into one before set; the recursive
        // call is adorned bb.
        let mut program = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,c). flat(c,d). down(d,b).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "sg(a, b)").unwrap();
        let adorned = adorn(&program, &q).unwrap();
        let text = display_adorned(&program, &adorned);
        assert!(
            text.contains("sg^bb(X,Y) :- up(X,X1), down(Y1,Y), sg^bb(X1,Y1)."),
            "{text}"
        );
        assert_eq!(condition3_violations(&program, &adorned), vec![1]);
    }

    #[test]
    fn query_with_no_rules_rejected() {
        let mut program = parse_program("e(a,b).").unwrap();
        let q = Query::parse(&mut program, "e(a, Y)").unwrap();
        assert_eq!(
            adorn(&program, &q).unwrap_err(),
            AdornError::NoRulesForQuery
        );
    }
}
