//! End-to-end evaluation of n-ary queries through the §4 pipeline:
//! adorn → chain check → binary-chain transformation → Lemma 1 →
//! graph-traversal evaluation over the virtual relations.
//!
//! The pipeline is split at the planning boundary: [`plan_nary_query`]
//! runs everything that depends only on the rules and the query's
//! *binding pattern* (adornment, transformation, equation rewriting,
//! machine compilation) and returns a reusable [`NaryPlan`];
//! [`evaluate_nary`] runs one plan against one database and one bound
//! tuple.  Serving layers cache plans per `(rules, predicate,
//! adornment)` and pay only the traversal per query; [`answer_query`]
//! composes the two for one-shot callers.

use crate::adornment::{adorn_for, chain_violations, AdornError, Adornment};
use crate::source::{ProbeSpace, VirtualSource};
use crate::transform::{transform, BinaryProgram};
use rq_common::{Const, FxHashSet, Pred};
use rq_datalog::{Database, Program, Query};
use rq_engine::{CompiledPlan, EvalContext, EvalOptions, EvalOutcome, Evaluator};
use rq_relalg::{lemma1_from_system, Lemma1Error, Lemma1Options};
use std::fmt;
use std::sync::Arc;

/// Why an n-ary query could not be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Adornment failed.
    Adorn(AdornError),
    /// The adorned program is not a chain program (Lemma 6's condition);
    /// the offending rule indices are attached.  Evaluating anyway (see
    /// [`answer_query_unchecked`]) may produce a strict superset of the
    /// answer (Lemma 5).
    NotChain(Vec<usize>),
    /// Equation rewriting failed.
    Lemma1(Lemma1Error),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Adorn(e) => write!(f, "adornment failed: {e}"),
            QueryError::NotChain(rules) => {
                write!(f, "not a chain program (rules {rules:?})")
            }
            QueryError::Lemma1(e) => write!(f, "equation transformation failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<AdornError> for QueryError {
    fn from(e: AdornError) -> Self {
        QueryError::Adorn(e)
    }
}

impl From<Lemma1Error> for QueryError {
    fn from(e: Lemma1Error) -> Self {
        QueryError::Lemma1(e)
    }
}

/// A compiled §4 query plan: everything derivable from the rules and
/// the binding pattern alone, reusable across databases and bound
/// values.
pub struct NaryPlan {
    /// The queried predicate.
    pub pred: Pred,
    /// The binding pattern the plan was compiled for.
    pub adornment: Adornment,
    /// The transformed binary program (after Lemma 1 rewriting).
    pub binary: BinaryProgram,
    /// Thompson machines for the transformed equation system, both
    /// orientations — immutable and `Sync`, so one compile serves
    /// concurrent query threads.
    pub compiled: CompiledPlan,
}

impl NaryPlan {
    /// Every real predicate a query under this plan can consult — the
    /// invalidation footprint (virtual predicates resolved back to the
    /// base relations their joins read).
    pub fn read_set(&self, program: &Program) -> FxHashSet<Pred> {
        self.binary.base_read_set(program)
    }
}

/// Compile the §4 pipeline for `(pred, adornment)`, rejecting programs
/// that fail the chain condition.
pub fn plan_nary_query(
    program: &Program,
    pred: Pred,
    adornment: Adornment,
) -> Result<NaryPlan, QueryError> {
    plan_nary_inner(program, pred, adornment, true)
}

/// Like [`plan_nary_query`] but skipping the chain check (Lemma 5's
/// overapproximating mode; see [`answer_query_unchecked`]).
pub fn plan_nary_query_unchecked(
    program: &Program,
    pred: Pred,
    adornment: Adornment,
) -> Result<NaryPlan, QueryError> {
    plan_nary_inner(program, pred, adornment, false)
}

fn plan_nary_inner(
    program: &Program,
    pred: Pred,
    adornment: Adornment,
    check_chain: bool,
) -> Result<NaryPlan, QueryError> {
    let adorned = adorn_for(program, pred, adornment)?;
    if check_chain {
        let violations = chain_violations(program, &adorned);
        if !violations.is_empty() {
            return Err(QueryError::NotChain(violations));
        }
    }
    let mut binary = transform(program, &adorned);
    // Lemma 1 over the bin equations (e.g. the flight program's
    // bin-cnx = base ∪ in·bin-cnx becomes the regular in*·base).
    let simplified = lemma1_from_system(binary.system.clone(), &Lemma1Options::default())?;
    binary.system = simplified.system;
    let compiled = CompiledPlan::compile(&binary.system);
    Ok(NaryPlan {
        pred,
        adornment,
        binary,
        compiled,
    })
}

/// Run one compiled plan against one database: anchor the traversal at
/// the tuple of bound constants (ascending position order; `t()` when
/// nothing is bound), run the transformed machine, and decode the
/// answer tuple constants back to rows over the free positions.
pub fn evaluate_nary(
    program: &Program,
    db: &Database,
    plan: &NaryPlan,
    bound: &[Const],
    options: &EvalOptions,
) -> (Vec<Vec<Const>>, EvalOutcome) {
    evaluate_nary_shared(
        program,
        db,
        plan,
        bound,
        options,
        &Arc::new(ProbeSpace::new(program)),
        None,
    )
}

/// [`evaluate_nary`] with the epoch-scoped sharing hooks: `space` is
/// the tuple interner + virtual-probe memo shared by every query of
/// one snapshot epoch against this plan, and `ctx` the engine's
/// machine-traversal memo for the same epoch.  Both must only ever be
/// shared between evaluations over the same database version; a
/// serving layer keys them per epoch and drops them wholesale on
/// publish.
pub fn evaluate_nary_shared(
    program: &Program,
    db: &Database,
    plan: &NaryPlan,
    bound: &[Const],
    options: &EvalOptions,
    space: &Arc<ProbeSpace>,
    ctx: Option<&EvalContext>,
) -> (Vec<Vec<Const>>, EvalOutcome) {
    debug_assert_eq!(bound.len(), plan.adornment.bound_positions().len());
    let source = VirtualSource::with_space(program, db, &plan.binary, Arc::clone(space));
    let mut evaluator = Evaluator::with_plan(&plan.binary.system, &plan.compiled, &source);
    if let Some(ctx) = ctx {
        evaluator = evaluator.with_context(ctx);
    }
    let anchor = source.intern_tuple(bound.to_vec());
    let mut options = options.clone();
    if plan.adornment.free_positions().is_empty() && options.stop_on_answer.is_none() {
        // Fully bound query: the only possible answer is the empty
        // tuple, so stop the moment membership is established.
        options.stop_on_answer = Some(source.intern_tuple(Vec::new()));
    }
    let outcome = evaluator.evaluate(plan.binary.query_bin, anchor, &options);
    let mut rows: Vec<Vec<Const>> = outcome
        .answers
        .iter()
        .map(|&c| source.decode_tuple(c))
        .collect();
    rows.sort();
    rows.dedup();
    (rows, outcome)
}

/// The answer to an n-ary query.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// One row per answer: the values of the free argument positions, in
    /// ascending position order.  Sorted and deduplicated.
    pub rows: Vec<Vec<Const>>,
    /// The traversal outcome (counters, convergence, graph size).
    pub outcome: EvalOutcome,
    /// The transformed binary program (for inspection).
    pub binary: BinaryProgram,
}

impl QueryAnswer {
    /// Render the rows with the program's constant names.
    pub fn display_rows(&self, program: &Program) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| {
                let parts: Vec<String> = row.iter().map(|&c| program.consts.display(c)).collect();
                parts.join(",")
            })
            .collect()
    }
}

/// Evaluate an n-ary query with the full §4 pipeline, rejecting programs
/// that fail the chain condition.
pub fn answer_query(
    program: &Program,
    db: &Database,
    query: &Query,
    options: &EvalOptions,
) -> Result<QueryAnswer, QueryError> {
    answer_query_inner(program, db, query, options, true)
}

/// Like [`answer_query`] but skipping the chain check.  For non-chain
/// programs the transformed program may compute a *superset* of the true
/// answer (Lemma 5 guarantees containment in one direction only) — this
/// entry point exists to demonstrate exactly that failure mode.
pub fn answer_query_unchecked(
    program: &Program,
    db: &Database,
    query: &Query,
    options: &EvalOptions,
) -> Result<QueryAnswer, QueryError> {
    answer_query_inner(program, db, query, options, false)
}

fn answer_query_inner(
    program: &Program,
    db: &Database,
    query: &Query,
    options: &EvalOptions,
    check_chain: bool,
) -> Result<QueryAnswer, QueryError> {
    let plan = plan_nary_inner(program, query.pred, Adornment::of_query(query), check_chain)?;
    // Anchor: the tuple of bound constants, t() when nothing is bound.
    let bound: Vec<Const> = query
        .args
        .iter()
        .filter_map(|a| match a {
            rq_datalog::QueryArg::Bound(c) => Some(*c),
            rq_datalog::QueryArg::Free => None,
        })
        .collect();
    let (rows, outcome) = evaluate_nary(program, db, &plan, &bound, options);
    Ok(QueryAnswer {
        rows,
        outcome,
        binary: plan.binary,
    })
}

/// Oracle comparison helper: the answer rows a bottom-up evaluation
/// produces for the same query.
pub fn oracle_rows(program: &Program, query: &Query) -> Vec<Vec<Const>> {
    let res = rq_datalog::seminaive_eval(program).expect("safe program");
    let tuples: Vec<Vec<Const>> = res
        .db
        .relation(query.pred)
        .iter()
        .map(|t| t.to_vec())
        .collect();
    query.answer_from_relation(&tuples)
}

/// Count the base-relation tuples a full bottom-up evaluation consults,
/// for the binding-restriction comparison (experiment E10).
pub fn bottom_up_counters(program: &Program) -> rq_common::Counters {
    rq_datalog::seminaive_eval(program)
        .expect("safe program")
        .counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::FxHashSet;
    use rq_datalog::parse_program;

    fn run(src: &str, query: &str) -> (Program, QueryAnswer, Vec<Vec<Const>>) {
        let mut program = parse_program(src).unwrap();
        let q = Query::parse(&mut program, query).unwrap();
        let db = Database::from_program(&program);
        let ans = answer_query(&program, &db, &q, &EvalOptions::default()).unwrap();
        let oracle = oracle_rows(&program, &q);
        (program, ans, oracle)
    }

    const FLIGHTS: &str = "\
cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
flight(hel,900,ams,1130).\n\
flight(ams,1200,cdg,1330).\n\
flight(ams,1100,cdg,1230).\n\
flight(cdg,1400,nce,1530).\n\
flight(osl,800,hel,930).\n\
is_deptime(900). is_deptime(1200). is_deptime(1100). is_deptime(1400). is_deptime(800).";

    #[test]
    fn flight_query_matches_oracle() {
        let (_, ans, oracle) = run(FLIGHTS, "cnx(hel, 900, D, AT)");
        assert_eq!(ans.rows, oracle);
        assert!(ans.outcome.converged);
        // hel@900 → ams@1130; ams@1200 → cdg@1330; cdg@1400 → nce@1530.
        assert_eq!(ans.rows.len(), 3);
    }

    #[test]
    fn flight_bindings_restrict_facts_consulted() {
        // The nce-anchored tail of the network is irrelevant for a
        // query from cdg; the demand-driven evaluation must touch fewer
        // tuples than the full bottom-up fixpoint.
        let (_, ans, oracle) = run(FLIGHTS, "cnx(cdg, 1400, D, AT)");
        assert_eq!(ans.rows, oracle);
        assert_eq!(ans.rows.len(), 1);
        let program = parse_program(FLIGHTS).unwrap();
        let bottom_up = bottom_up_counters(&program);
        assert!(
            ans.outcome.counters.tuples_retrieved < bottom_up.tuples_retrieved,
            "demand {} !< bottom-up {}",
            ans.outcome.counters.tuples_retrieved,
            bottom_up.tuples_retrieved
        );
    }

    #[test]
    fn naughton_query_matches_oracle() {
        let (_, ans, oracle) = run(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Z), p(Y,Z).\n\
             b0(m1,n1). b0(m2,n2). b0(m3,n3).\n\
             b1(a,n2). b1(m2,n3). b1(m1,n1). b1(m3,n1).",
            "p(a, Y)",
        );
        assert_eq!(ans.rows, oracle);
        assert!(!ans.rows.is_empty());
    }

    #[test]
    fn same_generation_through_section4() {
        let (_, ans, oracle) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg(a, Y)",
        );
        assert_eq!(ans.rows, oracle);
        assert_eq!(ans.rows.len(), 2); // {b, z}
    }

    #[test]
    fn second_argument_bound_via_section4() {
        // §3 cannot use a second-argument binding; §4 can (adornment fb).
        let (_, ans, oracle) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg(X, b)",
        );
        assert_eq!(ans.rows, oracle);
        assert_eq!(ans.rows.len(), 1); // {a}
    }

    #[test]
    fn both_arguments_bound() {
        let (_, ans, oracle) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). flat(a1,b1). down(b1,b).",
            "sg(a, b)",
        );
        assert_eq!(ans.rows, oracle);
        // Both bound: one empty row means "yes".
        assert_eq!(ans.rows, vec![Vec::<Const>::new()]);
    }

    #[test]
    fn all_free_query() {
        let (_, ans, oracle) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c).",
            "tc(X, Y)",
        );
        assert_eq!(ans.rows, oracle);
        assert_eq!(ans.rows.len(), 3);
    }

    #[test]
    fn non_chain_rejected_and_overapproximates_unchecked() {
        // §4's counterexample: with bl(a,b), b0(b,c) the correct answer
        // to p(a,Y) is {b}; the transformed program yields every domain
        // element (Lemma 5's containment is strict here).
        let mut program = parse_program(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Y), p(Y,Z).\n\
             b1(a,b). b0(b,c).",
        )
        .unwrap();
        let q = Query::parse(&mut program, "p(a, Y)").unwrap();
        let db = Database::from_program(&program);
        let err = answer_query(&program, &db, &q, &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, QueryError::NotChain(_)));

        let forced = answer_query_unchecked(&program, &db, &q, &EvalOptions::default()).unwrap();
        let oracle = oracle_rows(&program, &q);
        // Correct answer: {b}.
        assert_eq!(oracle.len(), 1);
        // The forced transformation overapproximates: a superset
        // containing every domain element (a, b, c).
        let got: FxHashSet<&Vec<Const>> = forced.rows.iter().collect();
        for row in &oracle {
            assert!(got.contains(row), "Lemma 5: answers must be contained");
        }
        assert_eq!(forced.rows.len(), 3, "all domain elements appear");
    }

    #[test]
    fn list_append_three_ary() {
        // A 3-ary chain-programmable recursion: app(Xs, Y, Zs) over
        // successor-encoded lists: app(nil,Y,cons(Y))-style flattened to
        // EDB facts.  Here we use a simple graded relation:
        // path3(A, B, N): B reachable from A in N steps (N as unary-ish
        // constants with a succ relation).
        let (_, ans, oracle) = run(
            "path3(A,B,N) :- edge(A,B), one(N).\n\
             path3(A,B,N) :- edge(A,C), succ(M,N), path3(C,B,M).\n\
             edge(x,y). edge(y,z). edge(z,w).\n\
             one(n1). succ(n1,n2). succ(n2,n3).",
            "path3(x, B, N)",
        );
        assert_eq!(ans.rows, oracle);
        // x→y (1), x→z (2), x→w (3).
        assert_eq!(ans.rows.len(), 3);
    }
}
