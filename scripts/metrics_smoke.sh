#!/usr/bin/env bash
# Metrics smoke test: start `rqc serve --http` on an OS-assigned port,
# scrape GET /metrics, and assert the exposition is valid Prometheus
# text carrying the stack's core families.  Run from the repo root:
#
#   scripts/metrics_smoke.sh [path/to/rqc]
#
# Exits non-zero (with the offending scrape) on any violation.
set -euo pipefail

RQC="${1:-target/release/rqc}"
[ -x "$RQC" ] || { echo "no rqc binary at $RQC (build with: cargo build --release)" >&2; exit 1; }

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

cat > "$workdir/smoke.dl" <<'EOF'
tc(X,Y) :- e(X,Y).
tc(X,Z) :- e(X,Y), tc(Y,Z).
e(a,b). e(b,c). e(c,d).
EOF

"$RQC" serve "$workdir/smoke.dl" --http 127.0.0.1:0 --threads 2 \
  > /dev/null 2> "$workdir/stderr.log" &
server_pid=$!

# The stderr banner carries the bound address:
# `rqc serve --http 127.0.0.1:PORT — N wire worker(s), …`
addr=""
for _ in $(seq 1 50); do
  addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$workdir/stderr.log" | head -n1 || true)"
  [ -n "$addr" ] && break
  kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$workdir/stderr.log"; exit 1; } >&2
  sleep 0.1
done
[ -n "$addr" ] || { echo "no bound address in banner:"; cat "$workdir/stderr.log"; exit 1; } >&2

# Drive some traffic so the scrape has non-zero counters.  The ingest
# lands after a warm query, so the publish finds memoized tc state and
# repairs it in place (the delta-repair counters must move).
curl -sf -d '{"query": "tc(a, Y)"}' "http://$addr/query" > /dev/null
curl -sf -d '{"query": "tc(a, Y)"}' "http://$addr/query" > /dev/null
curl -sf -d '{"facts": "e(d, z)."}' "http://$addr/ingest" > /dev/null
curl -sf "http://$addr/healthz" | grep -q '"uptime_seconds"'

scrape="$workdir/metrics.txt"
curl -sf -D "$workdir/headers.txt" "http://$addr/metrics" > "$scrape"

fail() { echo "FAIL: $1" >&2; echo "--- scrape ---" >&2; cat "$scrape" >&2; exit 1; }

grep -qi '^content-type: text/plain; version=0\.0\.4' "$workdir/headers.txt" \
  || { echo "FAIL: wrong content type:"; cat "$workdir/headers.txt"; exit 1; } >&2

# Prometheus text-format validity:
#  * every non-comment line is `name[{labels}] value`;
#  * every sample's family has # HELP and # TYPE lines;
#  * # TYPE is one of counter|gauge|histogram.
awk '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / {
    type[$3] = 1
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram") {
      print "bad TYPE: " $0; exit 1
    }
    next
  }
  /^#/ { next }
  /^$/ { next }
  {
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+$/) {
      print "bad sample line: " $0; exit 1
    }
    name = $1; sub(/\{.*/, "", name)
    base = name; sub(/_(bucket|sum|count)$/, "", base)
    if (!(name in type) && !(base in type)) { print "no TYPE for: " name; exit 1 }
    if (!(name in help) && !(base in help)) { print "no HELP for: " name; exit 1 }
  }
' "$scrape" || fail "exposition format violation"

# Core families: per-endpoint latency histograms, cache hit/miss
# counters, service counters, and report-derived gauges.
for needle in \
  '# TYPE rq_http_request_seconds histogram' \
  'rq_http_request_seconds_bucket{endpoint="/query",le="+Inf"} 2' \
  'rq_http_request_seconds_count{endpoint="/query"} 2' \
  'rq_http_requests_total{endpoint="/query"} 2' \
  'rq_result_cache_hits_total 1' \
  'rq_result_cache_misses_total 1' \
  '# TYPE rq_plan_cache_hits_total counter' \
  'rq_queries_total 2' \
  'rq_ingests_total 1' \
  '# TYPE rq_engine_graph_nodes_total counter' \
  'rq_epoch 1' \
  '# TYPE rq_http_in_flight gauge' \
  '# TYPE rq_csr_builds_total counter' \
  'rq_csr_build_seconds_count 2' \
  '# TYPE rq_csr_probes_total counter' \
  '# TYPE rq_trie_probes_total counter' \
  '# TYPE rq_delta_repairs_total counter' \
  'rq_delta_repairs_total 1' \
  '# TYPE rq_delta_repaired_rows_total counter' \
  'rq_delta_fallback_cold_total 0'
do
  grep -qF "$needle" "$scrape" || fail "missing: $needle"
done

# The smoke program's epoch-0 publish builds stores for `e` and `tc`,
# and the two `tc(a, Y)` queries read `e` through its CSR: the compact
# path must actually serve probes, not just exist.
csr_probes="$(grep -E '^rq_csr_probes_total [0-9]+$' "$scrape" | awk '{print $2}')"
[ -n "$csr_probes" ] && [ "$csr_probes" -gt 0 ] \
  || fail "rq_csr_probes_total not positive (got: ${csr_probes:-missing})"

echo "metrics smoke OK ($addr, $(grep -c '^# TYPE' "$scrape") families)"
