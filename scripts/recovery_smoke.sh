#!/usr/bin/env bash
# Recovery smoke test: start `rqc serve --http --data-dir` on an
# OS-assigned port, ingest a couple of batches, SIGKILL the server,
# restart it on the same data dir, and assert (a) the recovery banner
# reports the pre-crash epoch, (b) queries answer identically to the
# pre-crash service, and (c) /metrics carries the rq_recovery_* and
# rq_wal_* families with the right values.  Run from the repo root:
#
#   scripts/recovery_smoke.sh [path/to/rqc]
#
# Exits non-zero (with the offending output) on any violation.
set -euo pipefail

RQC="${1:-target/release/rqc}"
[ -x "$RQC" ] || { echo "no rqc binary at $RQC (build with: cargo build --release)" >&2; exit 1; }

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

cat > "$workdir/smoke.dl" <<'EOF'
tc(X,Y) :- e(X,Y).
tc(X,Z) :- e(X,Y), tc(Y,Z).
e(a,b). e(b,c). e(c,d).
EOF
datadir="$workdir/data"
mkdir -p "$datadir"

# Spawn the server and wait for the bound-address stderr banner.  With
# --data-dir a recovery banner precedes it, so grep, don't head -1.
spawn() {
  "$RQC" serve "$workdir/smoke.dl" --http 127.0.0.1:0 --threads 2 \
    --data-dir "$datadir" > /dev/null 2> "$workdir/stderr.log" &
  server_pid=$!
  addr=""
  for _ in $(seq 1 50); do
    addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$workdir/stderr.log" | head -n1 || true)"
    [ -n "$addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$workdir/stderr.log"; exit 1; } >&2
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "no bound address in banner:"; cat "$workdir/stderr.log"; exit 1; } >&2
}

fail() { echo "FAIL: $1" >&2; echo "--- stderr ---" >&2; cat "$workdir/stderr.log" >&2; exit 1; }

# First life: two durable ingests, a reference answer, then SIGKILL.
spawn
curl -sf -d '{"facts": "e(d, p). e(p, q)."}' "http://$addr/ingest" \
  | grep -qF '"durable":true' || fail "ingest ack not durable"
curl -sf -d '{"facts": "e(q, r)."}' "http://$addr/ingest" > /dev/null
curl -sf -d '{"query": "tc(a, Y)"}' "http://$addr/query" > "$workdir/before.json"
grep -qF '"epoch":2' "$workdir/before.json" || fail "pre-crash epoch is not 2"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# Second life, same data dir: banner + byte-identical answer.
spawn
grep -qF 'recovered to epoch 2' "$workdir/stderr.log" || fail "missing recovery banner"
curl -sf -d '{"query": "tc(a, Y)"}' "http://$addr/query" > "$workdir/after.json"
cmp -s "$workdir/before.json" "$workdir/after.json" \
  || fail "post-recovery answer differs from pre-crash answer"

# The scrape carries the recovery gauges and WAL counters.
scrape="$workdir/metrics.txt"
curl -sf "http://$addr/metrics" > "$scrape"
for needle in \
  '# TYPE rq_recovery_epoch gauge' \
  'rq_recovery_epoch 2' \
  'rq_recovery_replayed_records 2' \
  'rq_recovery_dropped_records 0' \
  'rq_recovery_checkpoint_dropped 0' \
  '# TYPE rq_wal_records_total counter' \
  '# TYPE rq_wal_checkpoints_total counter' \
  'rq_wal_checkpoint_failures_total 0'
do
  grep -qF "$needle" "$scrape" \
    || { echo "FAIL: missing: $needle" >&2; echo "--- scrape ---" >&2; cat "$scrape" >&2; exit 1; }
done

echo "recovery smoke OK ($addr, recovered to epoch 2)"
