//! Cross-crate integration tests: every strategy must produce the same
//! answers on the paper's workloads, and the high-level `solve` API must
//! agree with the bottom-up oracles on all generators.

use recursive_queries::{solve, Strategy};
use rq_baselines::{counting, henschen_naqvi, magic_sets, reverse_counting, HuntGraph};
use rq_common::{Const, ConstValue, Counters, FxHashSet};
use rq_datalog::{naive_eval, Database, Query};
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};
use rq_workloads::{fig7, fig8, flights, graphs, Workload};

fn oracle_answers(w: &Workload) -> Vec<String> {
    let mut program = w.program.clone();
    let q = Query::parse(&mut program, &w.query).unwrap();
    let res = naive_eval(&program).unwrap();
    let tuples: Vec<Vec<Const>> = res.db.relation(q.pred).iter().map(|t| t.to_vec()).collect();
    q.answer_from_relation(&tuples)
        .into_iter()
        .map(|row| {
            row.iter()
                .map(|&c| program.consts.display(c))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

fn solve_answers(w: &Workload) -> (Vec<String>, Strategy) {
    let mut program = w.program.clone();
    let s = solve(&mut program, &w.query).unwrap();
    (s.rows(&program), s.strategy)
}

#[test]
fn solve_matches_oracle_on_all_generators() {
    let workloads = vec![
        fig7::sample_a(12),
        fig7::sample_b(12),
        fig7::sample_c(12),
        fig8::cyclic(2, 3),
        fig8::cyclic(3, 4),
        fig8::cyclic(2, 4),
        graphs::chain(15),
        graphs::binary_tree(4),
        graphs::grid(4, 4),
        graphs::layered_dag(4, 4, 0.35, 11),
        graphs::sg_tree(4),
        graphs::sg_random(4, 3, 0.4, 5),
        flights::paper_example(),
        flights::network(8, 3, 3),
    ];
    for w in workloads {
        let expected = oracle_answers(&w);
        let (got, _) = solve_answers(&w);
        assert_eq!(got, expected, "workload {}", w.name);
        if let Some(n) = w.expected_answers {
            assert_eq!(got.len(), n, "expected answer count for {}", w.name);
        }
    }
}

#[test]
fn flights_use_section4_pipeline() {
    let w = flights::paper_example();
    let (_, strategy) = solve_answers(&w);
    assert_eq!(strategy, Strategy::Section4);
    let w = graphs::chain(5);
    let (_, strategy) = solve_answers(&w);
    assert_eq!(strategy, Strategy::BinaryChain);
}

/// All five §3-table strategies plus Hunt et al. and seminaive agree on
/// every Figure 7 sample.
#[test]
fn all_strategies_agree_on_fig7() {
    for w in [fig7::sample_a(10), fig7::sample_b(10), fig7::sample_c(10)] {
        let mut program = w.program.clone();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let src_name = w
            .query
            .split('(')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        let a = program
            .consts
            .get(&ConstValue::Str(src_name.into()))
            .unwrap();

        let source = EdbSource::new(&db);
        let engine = Evaluator::new(&system, &source)
            .evaluate(sg, a, &EvalOptions::default())
            .answers;
        let hn = henschen_naqvi(&system, &db, sg, a, None).answers;
        let cnt = counting(&system, &db, sg, a, None).answers;
        let rev = reverse_counting(&system, &db, sg, a, None).answers;
        let q = Query::parse(&mut program, &w.query).unwrap();
        let magic: FxHashSet<Const> = magic_sets(&program, &q)
            .unwrap()
            .rows
            .into_iter()
            .map(|row| row[0])
            .collect();

        assert_eq!(hn, engine, "HN vs engine on {}", w.name);
        assert_eq!(cnt, engine, "counting vs engine on {}", w.name);
        assert_eq!(rev, engine, "reverse counting vs engine on {}", w.name);
        assert_eq!(magic, engine, "magic vs engine on {}", w.name);
    }
}

#[test]
fn all_strategies_agree_on_cyclic_fig8() {
    for (m, n) in [(2, 3), (3, 5), (2, 4)] {
        let w = fig8::cyclic(m, n);
        let program = w.program.clone();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
        let bound = fig8::sufficient_levels(m, n) + 1;

        let engine =
            rq_engine::evaluate_with_cyclic_guard(&system, &db, sg, a0, &EvalOptions::default())
                .answers;
        let hn = henschen_naqvi(&system, &db, sg, a0, Some(bound)).answers;
        let cnt = counting(&system, &db, sg, a0, Some(bound)).answers;
        assert_eq!(hn, engine, "HN on {}", w.name);
        assert_eq!(cnt, engine, "counting on {}", w.name);
        assert_eq!(engine.len(), w.expected_answers.unwrap());
    }
}

#[test]
fn hunt_agrees_with_engine_on_regular_workloads() {
    for w in [
        graphs::chain(20),
        graphs::binary_tree(4),
        graphs::grid(4, 4),
    ] {
        let program = w.program.clone();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let graph = HuntGraph::build(&db, &system.rhs[&tc]);
        let src_name = w
            .query
            .split('(')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        let a = program
            .consts
            .get(&ConstValue::Str(src_name.into()))
            .unwrap();
        let mut counters = Counters::new();
        let hunt = graph.query(a, &mut counters);
        let source = EdbSource::new(&db);
        let engine = Evaluator::new(&system, &source)
            .evaluate(tc, a, &EvalOptions::default())
            .answers;
        assert_eq!(hunt, engine, "{}", w.name);
    }
}

/// Lemma 2(2): running extra iterations after convergence never changes
/// the answer set.
#[test]
fn extra_iterations_are_harmless() {
    let w = fig7::sample_c(10);
    let program = w.program.clone();
    let db = Database::from_program(&program);
    let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    let sg = program.pred_by_name("sg").unwrap();
    let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();
    let source = EdbSource::new(&db);
    let ev = Evaluator::new(&system, &source);
    let natural = ev.evaluate(sg, a0, &EvalOptions::default());
    assert!(natural.converged);
    // A tighter bound below the natural iteration count truncates; a
    // looser one is identical.
    let looser = ev.evaluate(
        sg,
        a0,
        &EvalOptions {
            max_iterations: Some(natural.counters.iterations + 50),
            ..EvalOptions::default()
        },
    );
    assert_eq!(looser.answers, natural.answers);
    assert_eq!(looser.counters.iterations, natural.counters.iterations);
}

/// The engine's §3 pipeline and the §4 pipeline must agree on binary
/// queries that both can answer.
#[test]
fn section3_and_section4_agree_on_binary_queries() {
    for w in [fig7::sample_a(8), fig7::sample_c(8), graphs::sg_tree(3)] {
        let mut program = w.program.clone();
        let q = Query::parse(&mut program, &w.query).unwrap();
        let db = Database::from_program(&program);

        // §4 path.
        let s4 = rq_adorn::answer_query(&program, &db, &q, &EvalOptions::default()).unwrap();
        // §3 path.
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let src_name = w
            .query
            .split('(')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        let a = program
            .consts
            .get(&ConstValue::Str(src_name.into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let s3 = Evaluator::new(&system, &source).evaluate(q.pred, a, &EvalOptions::default());
        let s4_set: FxHashSet<Const> = s4.rows.iter().map(|row| row[0]).collect();
        assert_eq!(s4_set, s3.answers, "{}", w.name);
    }
}
