//! Differential testing of the whole §3 pipeline (Lemma 1 → automata →
//! traversal) against the seminaive bottom-up oracle, on *random
//! programs* — not just random data.  The generator
//! (`rq_workloads::randprog`) produces linear binary-chain programs
//! with random recursion structure (self-recursion, mutually recursive
//! pairs, non-recursive cross-references) over random layered EDBs;
//! every derived predicate is then queried in all four binding forms
//! and the answers must agree with the oracle exactly.

use recursive_queries::{solve_with, Strategy};
use rq_datalog::{seminaive_eval, Query};
use rq_engine::EvalOptions;
use rq_workloads::randprog::{random_program, seeded, RandProgConfig, RecursionStyle};

/// Run one generated program through every query form on every derived
/// predicate and compare with the bottom-up oracle.
fn check_program(rp: &rq_workloads::randprog::RandProgram, label: &str) {
    let mut program = rp.program.clone();
    let oracle = seminaive_eval(&program).expect("generated programs have no builtins");
    let options = EvalOptions {
        max_iterations: Some(rp.iteration_bound),
        ..EvalOptions::default()
    };

    for (pi, name) in rp.derived.iter().enumerate() {
        let pred = program
            .pred_by_name(name)
            .expect("derived predicate exists");
        let full = oracle.tuples(pred);

        // Query constants: an early one, a middle one, one occurring in
        // the relation (when non-empty), and one foreign to the data.
        let mut firsts: Vec<String> = Vec::new();
        firsts.push("n0".to_string());
        firsts.push("n5".to_string());
        if let Some(t) = full.first() {
            firsts.push(program.consts.display(t[0]));
        }
        firsts.push("unseen".to_string());
        firsts.sort();
        firsts.dedup();

        // The all-pairs form evaluates from every source; exercising it
        // (and its repeated-variable diagonal restriction) once per
        // program keeps the suite fast without losing the paths.
        let mut queries: Vec<String> = if pi == 0 {
            vec![format!("{name}(X, Y)"), format!("{name}(Z, Z)")]
        } else {
            Vec::new()
        };
        for a in &firsts {
            queries.push(format!("{name}({a}, Y)"));
            queries.push(format!("{name}(X, {a})"));
        }
        if let Some(t) = full.first() {
            let x = program.consts.display(t[0]);
            let y = program.consts.display(t[1]);
            queries.push(format!("{name}({x}, {y})"));
            queries.push(format!("{name}({y}, {x})"));
        }

        for qtext in queries {
            let solution = solve_with(&mut program, &qtext, &options)
                .unwrap_or_else(|e| panic!("{label}: solve({qtext}) failed: {e}\n{}", rp.text));
            assert_eq!(
                solution.strategy,
                Strategy::BinaryChain,
                "{label}: {qtext} should take the §3 pipeline"
            );
            assert!(
                solution.converged,
                "{label}: {qtext} hit the iteration bound {}\n{}",
                rp.iteration_bound, rp.text
            );
            let query = Query::parse(&mut program, &qtext).unwrap();
            let mut expected = query.answer_from_relation(&full);
            expected.sort();
            expected.dedup();
            assert_eq!(
                solution.answers, expected,
                "{label}: wrong answers for {qtext}\n{}",
                rp.text
            );
        }
    }
}

#[test]
fn regular_programs_match_oracle() {
    for seed in 0..50 {
        let rp = seeded(seed, RecursionStyle::Regular);
        check_program(&rp, &format!("regular/{seed}"));
    }
}

#[test]
fn middle_linear_programs_match_oracle() {
    for seed in 0..50 {
        let rp = seeded(seed, RecursionStyle::MiddleLinear);
        check_program(&rp, &format!("middle/{seed}"));
    }
}

#[test]
fn mixed_programs_match_oracle() {
    for seed in 0..50 {
        let rp = seeded(seed, RecursionStyle::Mixed);
        check_program(&rp, &format!("mixed/{seed}"));
    }
}

#[test]
fn deeper_recursion_structures_match_oracle() {
    for seed in 0..16 {
        let rp = random_program(&RandProgConfig {
            seed,
            groups: 3,
            mutual_prob: 0.6,
            style: RecursionStyle::Mixed,
            base_preds: 4,
            rules_per_pred: 3,
            max_body: 4,
            lower_ref_prob: 0.35,
            domain: 14,
            facts_per_base: 24,
            cyclic: false,
        });
        check_program(&rp, &format!("deep/{seed}"));
    }
}

#[test]
fn sparse_and_dense_data_match_oracle() {
    for (facts, domain) in [(4usize, 20usize), (60, 8), (120, 10)] {
        for seed in 0..10 {
            let rp = random_program(&RandProgConfig {
                seed,
                domain,
                facts_per_base: facts,
                style: RecursionStyle::Mixed,
                ..RandProgConfig::default()
            });
            check_program(&rp, &format!("density/{facts}x{domain}/{seed}"));
        }
    }
}

/// ε-compacted machines answer exactly like plain Thompson machines on
/// random programs (every query form that goes through the Evaluator).
#[test]
fn compacted_machines_match_plain_on_random_programs() {
    use rq_engine::{EdbSource, Evaluator};
    use rq_relalg::{lemma1, Lemma1Options};

    for seed in 0..30 {
        let rp = seeded(seed, RecursionStyle::Mixed);
        let mut program = rp.program.clone();
        let db = rq_datalog::Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let source = EdbSource::new(&db);
        let plain = Evaluator::new(&system, &source);
        let compacted = Evaluator::new_compacted(&system, &source);
        let options = EvalOptions {
            max_iterations: Some(rp.iteration_bound),
            ..EvalOptions::default()
        };
        for name in &rp.derived {
            let pred = program.pred_by_name(name).unwrap();
            for a in ["n0", "n3", "n9"] {
                let q = rq_datalog::Query::parse(&mut program, &format!("{name}({a}, Y)")).unwrap();
                let rq_datalog::QueryArg::Bound(c) = q.args[0] else {
                    unreachable!()
                };
                let p_out = plain.evaluate(pred, c, &options);
                let c_out = compacted.evaluate(pred, c, &options);
                assert_eq!(
                    p_out.answers, c_out.answers,
                    "seed {seed} {name}({a},Y)\n{}",
                    rp.text
                );
                let p_inv = plain.evaluate_inverse(pred, c, &options);
                let c_inv = compacted.evaluate_inverse(pred, c, &options);
                assert_eq!(
                    p_inv.answers, c_inv.answers,
                    "seed {seed} {name}(X,{a}) inverse\n{}",
                    rp.text
                );
            }
        }
    }
}

/// Lemma 2 statement (1) on random *cyclic* data: however early the
/// evaluation is cut off, the partial answer set is sound (it answers
/// the truncated unrolling `p = p_i`, a subset of the fixpoint); and
/// whenever the run converges it is also complete.
#[test]
fn truncated_evaluation_is_sound_on_cyclic_data() {
    for seed in 0..30 {
        let rp = random_program(&RandProgConfig {
            seed,
            style: RecursionStyle::Mixed,
            cyclic: true,
            domain: 8,
            facts_per_base: 14,
            ..RandProgConfig::default()
        });
        let mut program = rp.program.clone();
        let oracle = seminaive_eval(&program).unwrap();
        for name in &rp.derived {
            let pred = program.pred_by_name(name).unwrap();
            let full = oracle.tuples(pred);
            for bound in [1u64, 2, 4, 16] {
                let options = EvalOptions {
                    max_iterations: Some(bound),
                    node_budget: Some(200_000),
                    ..EvalOptions::default()
                };
                for a in ["n0", "n4"] {
                    let qtext = format!("{name}({a}, Y)");
                    let solution = solve_with(&mut program, &qtext, &options)
                        .unwrap_or_else(|e| panic!("seed {seed} {qtext}: {e}\n{}", rp.text));
                    let query = Query::parse(&mut program, &qtext).unwrap();
                    let expected = query.answer_from_relation(&full);
                    for row in &solution.answers {
                        assert!(
                            expected.contains(row),
                            "seed {seed} {qtext} bound {bound}: unsound answer\n{}",
                            rp.text
                        );
                    }
                    if solution.converged {
                        assert_eq!(
                            solution.answers, expected,
                            "seed {seed} {qtext} bound {bound}: converged but incomplete\n{}",
                            rp.text
                        );
                    }
                }
            }
        }
    }
}

/// The naive and seminaive oracles agree on generated programs (a
/// cross-check that the differential baseline itself is trustworthy).
#[test]
fn oracles_agree_on_random_programs() {
    for seed in 0..30 {
        let rp = seeded(seed, RecursionStyle::Mixed);
        let naive = rq_datalog::naive_eval(&rp.program).unwrap();
        let semi = seminaive_eval(&rp.program).unwrap();
        for name in &rp.derived {
            let p = rp.program.pred_by_name(name).unwrap();
            let mut a = naive.tuples(p);
            let mut b = semi.tuples(p);
            a.sort();
            b.sort();
            assert_eq!(a, b, "seed {seed}, predicate {name}:\n{}", rp.text);
        }
    }
}

/// The counting-family baselines and Henschen–Naqvi apply whenever the
/// equation has the shape `p = e0 ∪ e1·p·e2`; a single middle-linear
/// recursion group with one recursive rule guarantees it.  All four
/// level-set strategies must agree with the oracle on random programs.
#[test]
fn linear_shape_baselines_match_oracle_on_random_programs() {
    use rq_relalg::{lemma1, linear_decomposition, Lemma1Options};

    let mut checked = 0;
    for seed in 0..40 {
        let rp = random_program(&RandProgConfig {
            seed,
            groups: 1,
            mutual_prob: 0.0,
            style: RecursionStyle::MiddleLinear,
            rules_per_pred: 2,
            lower_ref_prob: 0.0,
            ..RandProgConfig::default()
        });
        let mut program = rp.program.clone();
        let db = rq_datalog::Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let pred = program.pred_by_name(&rp.derived[0]).unwrap();
        if linear_decomposition(pred, &system.rhs[&pred]).is_none() {
            continue; // equation simplified away from the e0 ∪ e1·p·e2 shape
        }
        checked += 1;
        let oracle = seminaive_eval(&program).unwrap();
        let full = oracle.tuples(pred);
        for a in ["n0", "n2", "n6"] {
            let q = Query::parse(&mut program, &format!("{}({a}, Y)", rp.derived[0])).unwrap();
            let rq_datalog::QueryArg::Bound(c) = q.args[0] else {
                unreachable!()
            };
            let mut expected: Vec<rq_common::Const> =
                full.iter().filter(|t| t[0] == c).map(|t| t[1]).collect();
            expected.sort();
            expected.dedup();
            let sort = |s: &rq_common::FxHashSet<rq_common::Const>| {
                let mut v: Vec<_> = s.iter().copied().collect();
                v.sort();
                v
            };
            let hn = rq_baselines::henschen_naqvi(&system, &db, pred, c, None);
            assert!(hn.converged, "hn seed {seed}\n{}", rp.text);
            assert_eq!(
                sort(&hn.answers),
                expected,
                "hn seed {seed} {a}\n{}",
                rp.text
            );
            let cnt = rq_baselines::counting(&system, &db, pred, c, None);
            assert_eq!(
                sort(&cnt.answers),
                expected,
                "counting seed {seed} {a}\n{}",
                rp.text
            );
            let rev = rq_baselines::reverse_counting(&system, &db, pred, c, None);
            assert_eq!(
                sort(&rev.answers),
                expected,
                "reverse counting seed {seed} {a}\n{}",
                rp.text
            );
        }
    }
    assert!(checked >= 20, "only {checked} seeds had the linear shape");
}

/// Magic sets, QSQ, and SLD resolution are all generic over programs;
/// they must agree with the oracle on random programs too.  Bodies are
/// restricted to at most one derived literal (`lower_ref_prob: 0`) —
/// §4's adornment, which magic and QSQ build on, assumes that form —
/// and to bound-first queries (SLD with a free first argument can
/// diverge by design).
#[test]
fn generic_baselines_match_oracle_on_random_programs() {
    for seed in 0..25 {
        let rp = random_program(&RandProgConfig {
            seed,
            style: RecursionStyle::Mixed,
            lower_ref_prob: 0.0,
            ..RandProgConfig::default()
        });
        let mut program = rp.program.clone();
        let oracle = seminaive_eval(&program).unwrap();
        for name in &rp.derived {
            let pred = program.pred_by_name(name).unwrap();
            let full = oracle.tuples(pred);
            let Some(first) = full.first().map(|t| program.consts.display(t[0])) else {
                continue;
            };
            let qtext = format!("{name}({first}, Y)");
            let query = Query::parse(&mut program, &qtext).unwrap();
            let mut expected = query.answer_from_relation(&full);
            expected.sort();
            expected.dedup();

            let magic = rq_baselines::magic_sets(&program, &query)
                .unwrap_or_else(|e| panic!("magic({qtext}) seed {seed}: {e}\n{}", rp.text));
            let mut magic_rows = magic.rows.clone();
            magic_rows.sort();
            magic_rows.dedup();
            assert_eq!(
                magic_rows, expected,
                "magic {qtext} seed {seed}\n{}",
                rp.text
            );

            let qsq = rq_baselines::qsq(&program, &query)
                .unwrap_or_else(|e| panic!("qsq({qtext}) seed {seed}: {e}\n{}", rp.text));
            let mut qsq_rows = qsq.rows.clone();
            qsq_rows.sort();
            qsq_rows.dedup();
            assert_eq!(qsq_rows, expected, "qsq {qtext} seed {seed}\n{}", rp.text);

            let sld = rq_baselines::sld(&program, &query, 200_000);
            if sld.complete {
                let mut sld_rows = sld.rows.clone();
                sld_rows.sort();
                sld_rows.dedup();
                assert_eq!(sld_rows, expected, "sld {qtext} seed {seed}\n{}", rp.text);
            }
        }
    }
}

mod proptest_differential {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any configuration in a broad parameter box produces a program
        /// whose engine answers match the oracle.
        #[test]
        fn engine_matches_oracle(
            seed in 0u64..10_000,
            groups in 1usize..4,
            mutual in 0usize..2,
            style_pick in 0usize..3,
            base_preds in 1usize..4,
            domain in 4usize..20,
            facts in 4usize..40,
        ) {
            let style = [
                RecursionStyle::Regular,
                RecursionStyle::MiddleLinear,
                RecursionStyle::Mixed,
            ][style_pick];
            let rp = random_program(&RandProgConfig {
                seed,
                groups,
                mutual_prob: mutual as f64,
                style,
                base_preds,
                rules_per_pred: 3,
                max_body: 4,
                lower_ref_prob: 0.3,
                domain,
                facts_per_base: facts,
                cyclic: false,
            });
            check_program(&rp, &format!("prop/{seed}"));
        }
    }
}
