//! End-to-end tests of the `rqc` binary: one-shot mode, plan/stats
//! flags, the REPL over a piped stdin, and error exits.  Cargo exposes
//! the built binary path via `CARGO_BIN_EXE_rqc`.

use std::io::Write;
use std::process::{Command, Stdio};

const RQC: &str = env!("CARGO_BIN_EXE_rqc");

const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                  sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                  up(john, mary). flat(mary, lisa). down(lisa, erik).\n";

fn write_program(dir: &std::path::Path) -> std::path::PathBuf {
    let path = dir.join("family.dl");
    std::fs::write(&path, SG).unwrap();
    path
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rqc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn one_shot_query_prints_answers_on_stdout() {
    let dir = tempdir();
    let program = write_program(&dir);
    let out = Command::new(RQC)
        .arg(&program)
        .arg("sg(john, Y)")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "erik");
}

#[test]
fn plan_and_stats_go_to_stderr() {
    let dir = tempdir();
    let program = write_program(&dir);
    let out = Command::new(RQC)
        .arg(&program)
        .arg("sg(john, Y)")
        .arg("--plan")
        .arg("--stats")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stdout.trim(), "erik", "answers only on stdout");
    assert!(stderr.contains("equation system"), "{stderr}");
    assert!(stderr.contains("work="), "{stderr}");
}

#[test]
fn demo_mode_runs() {
    let out = Command::new(RQC).arg("--demo").output().unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "erik");
}

#[test]
fn missing_file_exits_nonzero() {
    let out = Command::new(RQC)
        .arg("/nonexistent/prog.dl")
        .arg("sg(john, Y)")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn bad_query_exits_nonzero() {
    let dir = tempdir();
    let program = write_program(&dir);
    let out = Command::new(RQC)
        .arg(&program)
        .arg("nosuch(a, Y)")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown predicate"));
}

#[test]
fn repl_session_over_stdin() {
    let dir = tempdir();
    let program = write_program(&dir);
    let mut child = Command::new(RQC)
        .arg("repl")
        .arg(&program)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"sg(john, Y)\n:add flat(john, zoe)\nsg(john, Y)\n:oracle sg(john, Y)\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "erik");
    assert!(lines[1].starts_with("ok:"));
    assert_eq!(&lines[2..4], &["erik", "zoe"]);
    // The oracle agrees with the engine.
    assert_eq!(&lines[4..6], &["erik", "zoe"]);
}

#[test]
fn serve_session_over_stdin() {
    let dir = tempdir();
    let program = write_program(&dir);
    let mut child = Command::new(RQC)
        .arg("serve")
        .arg(&program)
        .arg("--threads")
        .arg("2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            b"sg(john, Y); sg(X, erik)\n:add flat(john, paul)\nsg(john, Y)\n\
              sg(john, paul); sg(paul, john)\n:epoch\n:quit\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "sg(john, Y): erik");
    assert_eq!(lines[1], "sg(X, erik): john");
    assert!(lines[2].starts_with("epoch 1"), "{}", lines[2]);
    assert_eq!(lines[3], "sg(john, Y): erik paul");
    // Membership forms answer yes/no through the same batch line.
    assert_eq!(lines[4], "sg(john, paul): yes");
    assert_eq!(lines[5], "sg(paul, john): no");
    assert_eq!(lines[6], "epoch 1");
}

#[test]
fn repl_eof_terminates_cleanly() {
    let mut child = Command::new(RQC)
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    drop(child.stdin.take()); // immediate EOF
    let status = child.wait().unwrap();
    assert!(status.success());
}

#[test]
fn repl_survives_errors() {
    let mut child = Command::new(RQC)
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b":nonsense\n:add sg(X,Y) :- broken(\n:help\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("commands:"),
        "help still works after errors"
    );
}
