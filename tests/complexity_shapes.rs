//! Deterministic complexity-shape checks for the paper's claims, using
//! unit-cost operation counts and log-log slope fitting across a size
//! sweep.  These are the assertions behind EXPERIMENTS.md; the Criterion
//! benches measure the same quantities in wall-clock.

use rq_baselines::{counting, henschen_naqvi};
use rq_common::{Const, ConstValue};
use rq_datalog::Database;
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, EqSystem, Lemma1Options};
use rq_workloads::{fig7, graphs, Workload};

fn setup(w: &Workload) -> (rq_datalog::Program, Database, EqSystem, Const) {
    let program = w.program.clone();
    let db = Database::from_program(&program);
    let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    let src_name = w
        .query
        .split('(')
        .nth(1)
        .unwrap()
        .split(',')
        .next()
        .unwrap();
    let a = program
        .consts
        .get(&ConstValue::Str(src_name.into()))
        .unwrap();
    (program, db, system, a)
}

fn engine_work(w: &Workload) -> f64 {
    let (program, db, system, a) = setup(w);
    let sg = program
        .pred_by_name("sg")
        .or_else(|| program.pred_by_name("tc"))
        .unwrap();
    let source = EdbSource::new(&db);
    let out = Evaluator::new(&system, &source).evaluate(sg, a, &EvalOptions::default());
    out.counters.total_work() as f64
}

/// Least-squares slope of log(work) against log(n).
fn loglog_slope(points: &[(usize, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let lx = (x as f64).ln();
        let ly = y.max(1.0).ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

const SIZES: [usize; 4] = [64, 128, 256, 512];

#[test]
fn theorem3_regular_case_is_linear() {
    // Theorem 3: the regular case runs in O(n t).  Chains: answers are
    // n, work must scale ~n (slope ≈ 1).
    let points: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| (n, engine_work(&graphs::chain(n))))
        .collect();
    let slope = loglog_slope(&points);
    assert!(
        (0.85..1.25).contains(&slope),
        "chain slope {slope} out of linear range; points {points:?}"
    );
}

#[test]
fn fig7a_ours_linear() {
    let points: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| (n, engine_work(&fig7::sample_a(n))))
        .collect();
    let slope = loglog_slope(&points);
    assert!(
        (0.85..1.25).contains(&slope),
        "fig7(a) slope {slope}; points {points:?}"
    );
}

#[test]
fn fig7b_ours_quadratic() {
    let points: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| (n, engine_work(&fig7::sample_b(n))))
        .collect();
    let slope = loglog_slope(&points);
    assert!(
        (1.75..2.25).contains(&slope),
        "fig7(b) slope {slope}; points {points:?}"
    );
}

#[test]
fn fig7c_ours_linear_hn_quadratic() {
    let ours: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| (n, engine_work(&fig7::sample_c(n))))
        .collect();
    let slope = loglog_slope(&ours);
    assert!(
        (0.85..1.25).contains(&slope),
        "fig7(c) ours slope {slope}; points {ours:?}"
    );

    let hn: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| {
            let w = fig7::sample_c(n);
            let (program, db, system, a) = setup(&w);
            let sg = program.pred_by_name("sg").unwrap();
            let out = henschen_naqvi(&system, &db, sg, a, None);
            (n, out.counters.total_work() as f64)
        })
        .collect();
    let slope = loglog_slope(&hn);
    assert!(
        (1.75..2.25).contains(&slope),
        "fig7(c) HN slope {slope}; points {hn:?}"
    );
}

#[test]
fn counting_tracks_ours_on_all_samples() {
    // "The time bounds for our method are identical to those of the
    // counting method": slopes must match within tolerance on every
    // sample.
    for (label, gen) in [
        ("a", fig7::sample_a as fn(usize) -> Workload),
        ("b", fig7::sample_b as fn(usize) -> Workload),
        ("c", fig7::sample_c as fn(usize) -> Workload),
    ] {
        let ours: Vec<(usize, f64)> = SIZES.iter().map(|&n| (n, engine_work(&gen(n)))).collect();
        let cnt: Vec<(usize, f64)> = SIZES
            .iter()
            .map(|&n| {
                let w = gen(n);
                let (program, db, system, a) = setup(&w);
                let sg = program.pred_by_name("sg").unwrap();
                let out = counting(&system, &db, sg, a, None);
                (n, out.counters.total_work() as f64)
            })
            .collect();
        let ds = (loglog_slope(&ours) - loglog_slope(&cnt)).abs();
        assert!(
            ds < 0.3,
            "sample ({label}): ours slope {} vs counting slope {}",
            loglog_slope(&ours),
            loglog_slope(&cnt)
        );
    }
}

#[test]
fn fig8_needs_mn_iterations() {
    // Coprime cycles: the engine (with the m·n guard) finds the last
    // answer only after about m·n iterations; the iteration trace shows
    // m-length quiet periods ("the algorithm performs periodically m
    // successive iterations during which nothing new is added").
    for (m, n) in [(2, 3), (3, 4), (3, 5)] {
        let w = rq_workloads::fig8::cyclic(m, n);
        let (program, db, system, a0) = setup(&w);
        let sg = program.pred_by_name("sg").unwrap();
        let out = rq_engine::evaluate_with_cyclic_guard(
            &system,
            &db,
            sg,
            a0,
            &EvalOptions {
                record_iterations: true,
                ..EvalOptions::default()
            },
        );
        assert_eq!(out.answers.len(), n);
        // Last productive iteration: > m·(n-1), ≤ m·n + 1.
        let mut last = 0usize;
        let mut prev = 0u64;
        for (i, s) in out.iteration_stats.iter().enumerate() {
            if s.answers_so_far > prev {
                last = i + 1;
                prev = s.answers_so_far;
            }
        }
        assert!(
            last as u64 > (m * (n - 1)) as u64 && last as u64 <= (m * n + 1) as u64,
            "m={m} n={n}: last productive iteration {last}"
        );
    }
}

#[test]
fn demand_vs_preconstruction_gap_grows() {
    // E14: Hunt et al. preconstruction cost grows with the database; the
    // demand-driven engine's cost stays constant when the reachable
    // region does.
    let mut gaps = Vec::new();
    for &n in &[100usize, 200, 400] {
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).\n");
        for i in 0..n {
            src.push_str(&format!("e(u{}, u{}).\n", i, i + 1));
        }
        let program = rq_datalog::parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let hunt = rq_baselines::HuntGraph::build(&db, &system.rhs[&tc]);
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let source = EdbSource::new(&db);
        let engine = Evaluator::new(&system, &source).evaluate(tc, a, &EvalOptions::default());
        let gap =
            hunt.build_counters.total_work() as f64 / engine.counters.total_work().max(1) as f64;
        gaps.push(gap);
    }
    assert!(
        gaps.windows(2).all(|w| w[1] > w[0] * 1.5),
        "gap must grow with database size: {gaps:?}"
    );
}
