//! End-to-end tests of `rqc serve --http`: the real binary, a real
//! socket, and the acceptance parity check — `POST /batch` must answer
//! with byte-identical rows to the same specs asked of a
//! [`ServeSession`]'s service directly.  Doubles as the CI smoke test
//! (`cargo test --test http_serve`).

use recursive_queries::cli::ServeSession;
use rq_common::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const RQC: &str = env!("CARGO_BIN_EXE_rqc");

const PROGRAM: &str = "\
tc(X,Y) :- e(X,Y).\n\
tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
e(a,b). e(b,c). e(c,d).\n\
flight(hel,540,ams,690). flight(ams,720,cdg,810). flight(cdg,840,nce,930).\n\
is_deptime(540). is_deptime(720). is_deptime(840).\n";

/// A running `rqc serve --http` child, killed on drop (SIGKILL — the
/// child gets no chance to flush anything not already durable).
struct Server {
    child: Child,
    addr: String,
    banner: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server() -> Server {
    spawn_server_with(None)
}

fn spawn_server_with(data_dir: Option<&std::path::Path>) -> Server {
    let dir = std::env::temp_dir().join(format!("rqc-http-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("serve.dl");
    std::fs::write(&program, PROGRAM).unwrap();
    let mut cmd = Command::new(RQC);
    cmd.arg("serve")
        .arg(&program)
        .arg("--http")
        .arg("127.0.0.1:0")
        .arg("--threads")
        .arg("2");
    if let Some(d) = data_dir {
        cmd.arg("--data-dir").arg(d);
    }
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // A banner line on stderr carries the bound address:
    // `rqc serve --http 127.0.0.1:PORT — …`.  With `--data-dir` a
    // recovery banner precedes it, so scan until the address appears.
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let mut banner = String::new();
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            panic!("server exited before binding; stderr so far: {banner}");
        }
        banner.push_str(&line);
        if let Some(word) = line
            .split_whitespace()
            .find(|w| w.starts_with("127.0.0.1:"))
        {
            break word.to_string();
        }
    };
    Server {
        child,
        addr,
        banner,
    }
}

/// One request, raw: status line, full header section, and body text.
fn request_raw(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status")
        .parse()
        .unwrap();
    let mut text = String::new();
    reader.read_to_string(&mut text).unwrap();
    let (head, body_text) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or((String::new(), text));
    (status, head, body_text)
}

fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, Json) {
    let (status, _head, body_text) = request_raw(addr, method, path, body);
    (status, Json::parse(&body_text).unwrap())
}

/// Encode one service answer's rows exactly as the wire does, so the
/// comparison is byte-for-byte.
fn rows_as_wire_json(program: &rq_datalog::Program, rows: &[Vec<rq_common::Const>]) -> Json {
    Json::Array(
        rows.iter()
            .map(|row| {
                Json::Array(
                    row.iter()
                        .map(|&c| match program.consts.value(c) {
                            rq_common::ConstValue::Int(i) => Json::Int(*i),
                            _ => Json::Str(program.consts.display(c)),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

#[test]
fn healthz_answers_and_batch_matches_serve_session_byte_for_byte() {
    let server = spawn_server();

    // Smoke: the health endpoint answers.
    let (status, health) = request(&server.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("epoch").and_then(Json::as_i64), Some(0));
    assert!(health.get("uptime_seconds").and_then(Json::as_i64) >= Some(0));

    // Acceptance parity: every query form through POST /batch against
    // the binary must produce byte-identical rows to the same specs
    // through a ServeSession over the same program.
    let texts = [
        "tc(a, Y)",
        "tc(X, c)",
        "tc(X, Y)",
        "tc(X, X)",
        "tc(a, d)",
        "tc(d, a)",
        "cnx(hel, 540, D, AT)",
        "cnx(hel, 540, nce, 930)",
    ];
    let body = Json::object([(
        "queries",
        Json::Array(texts.iter().map(|t| Json::Str(t.to_string())).collect()),
    )])
    .encode();
    let (status, batch) = request(&server.addr, "POST", "/batch", &body);
    assert_eq!(status, 200, "{batch:?}");
    let answers = batch.get("answers").and_then(Json::as_array).unwrap();
    assert_eq!(answers.len(), texts.len());

    let session = ServeSession::new(PROGRAM, 2).unwrap();
    let service = session.service();
    let snapshot = service.snapshot();
    let specs: Vec<_> = texts
        .iter()
        .map(|t| service.parse_query(t).unwrap())
        .collect();
    let direct = service.query_batch(&specs);
    for ((text, wire_answer), direct_answer) in texts.iter().zip(answers).zip(&direct) {
        let expected = rows_as_wire_json(
            snapshot.program(),
            direct_answer.as_ref().unwrap().rows.as_ref(),
        );
        let got = wire_answer.get("rows").expect("rows field");
        assert_eq!(
            got.encode(),
            expected.encode(),
            "rows for `{text}` must be byte-identical"
        );
    }

    // One query through /query for good measure, then an ingest and
    // the refreshed answer.
    let (status, one) = request(&server.addr, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    assert_eq!(status, 200);
    assert_eq!(one.get("rows").and_then(Json::as_array).unwrap().len(), 3);

    let (status, ingest) = request(&server.addr, "POST", "/ingest", r#"{"facts": "e(d, z)."}"#);
    assert_eq!(status, 200, "{ingest:?}");
    assert_eq!(ingest.get("epoch").and_then(Json::as_i64), Some(1));

    let (_, after) = request(&server.addr, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    assert_eq!(after.get("rows").and_then(Json::as_array).unwrap().len(), 4);
    assert_eq!(after.get("epoch").and_then(Json::as_i64), Some(1));

    // The ingest dirtied only `e`: the cnx plan's probe space carried,
    // and /stats (the shared StatsReport rendering) says so.
    let (_, stats) = request(&server.addr, "GET", "/stats", "");
    let carried = stats
        .get("epoch_context")
        .and_then(|c| c.get("carried"))
        .expect("carried counters in /stats");
    assert!(
        carried.get("probe_spaces").and_then(Json::as_i64).unwrap() >= 1,
        "{stats:?}"
    );
}

#[test]
fn sigkilled_server_recovers_its_data_dir_and_answers_identically() {
    let data_dir = std::env::temp_dir().join(format!("rqc-recover-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).unwrap();

    // First life: ingest twice (both acks must say durable), take a
    // reference answer, then SIGKILL without any shutdown courtesy.
    let server = spawn_server_with(Some(&data_dir));
    let (status, ingest) = request(
        &server.addr,
        "POST",
        "/ingest",
        r#"{"facts": "e(d, q). e(q, r)."}"#,
    );
    assert_eq!(status, 200, "{ingest:?}");
    assert_eq!(ingest.get("epoch").and_then(Json::as_i64), Some(1));
    assert_eq!(ingest.get("durable"), Some(&Json::Bool(true)), "{ingest:?}");
    let (status, ingest) = request(&server.addr, "POST", "/ingest", r#"{"facts": "e(r, s)."}"#);
    assert_eq!(status, 200, "{ingest:?}");
    assert_eq!(ingest.get("epoch").and_then(Json::as_i64), Some(2));
    let (status, before) = request(&server.addr, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    assert_eq!(status, 200);
    assert_eq!(
        before.get("rows").and_then(Json::as_array).unwrap().len(),
        6
    );
    drop(server); // SIGKILL

    // Second life, same data dir: the banner reports the recovery, the
    // epoch survives, and the answer is byte-identical to pre-crash.
    let server = spawn_server_with(Some(&data_dir));
    assert!(
        server.banner.contains("recovered to epoch 2"),
        "no recovery banner in stderr: {}",
        server.banner
    );
    let (status, health) = request(&server.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("epoch").and_then(Json::as_i64), Some(2));
    let (status, after) = request(&server.addr, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    assert_eq!(status, 200);
    assert_eq!(after.encode(), before.encode());
    let (_, stats) = request(&server.addr, "GET", "/stats", "");
    let recovery = stats
        .get("durability")
        .and_then(|d| d.get("recovery"))
        .expect("recovery counters in /stats");
    assert_eq!(recovery.get("epoch").and_then(Json::as_i64), Some(2));
    assert_eq!(
        recovery.get("dropped_records").and_then(Json::as_i64),
        Some(0)
    );

    // And the recovered service keeps going: a third ingest lands on
    // epoch 3 and is durable in turn.
    let (status, ingest) = request(&server.addr, "POST", "/ingest", r#"{"facts": "e(s, t)."}"#);
    assert_eq!(status, 200, "{ingest:?}");
    assert_eq!(ingest.get("epoch").and_then(Json::as_i64), Some(3));
    assert_eq!(ingest.get("durable"), Some(&Json::Bool(true)));

    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn metrics_scrape_and_traced_query_over_a_real_socket() {
    let server = spawn_server();

    // Warm the stack so the scrape has non-trivial values to show.
    let (status, _) = request(&server.addr, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    assert_eq!(status, 200);
    let (status, _) = request(&server.addr, "POST", "/query", r#"{"query": "tc(a, Y)"}"#);
    assert_eq!(status, 200);

    let (status, head, text) = request_raw(&server.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "{head}"
    );
    // Prometheus text-format validity: every non-comment line is
    // `name{labels} value`, every sample is preceded by # HELP/# TYPE
    // for its family, histogram series expose _bucket/_sum/_count.
    let mut typed: Vec<&str> = Vec::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.push(rest.split_whitespace().next().unwrap());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad sample line: {line}"));
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in: {line}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            typed.iter().any(|t| {
                name == *t
                    || name
                        .strip_prefix(t)
                        .is_some_and(|s| matches!(s, "_bucket" | "_sum" | "_count"))
            }),
            "sample `{name}` has no preceding # TYPE"
        );
    }
    // Core families: per-endpoint latency histograms, cache hit/miss
    // counters, service counters, report gauges.
    for needle in [
        "# TYPE rq_http_request_seconds histogram",
        "rq_http_request_seconds_bucket{endpoint=\"/query\",le=\"+Inf\"} 2",
        "rq_http_request_seconds_count{endpoint=\"/query\"} 2",
        "rq_http_requests_total{endpoint=\"/query\"} 2",
        "rq_result_cache_hits_total 1",
        "rq_result_cache_misses_total 1",
        "# TYPE rq_plan_cache_misses_total counter",
        "rq_queries_total 2",
        "rq_epoch 0",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    // A traced query returns the span tree, root covering its children.
    let (status, traced) = request(
        &server.addr,
        "POST",
        "/query",
        r#"{"query": "tc(b, Y)", "trace": true}"#,
    );
    assert_eq!(status, 200, "{traced:?}");
    let trace = traced.get("trace").expect("trace field");
    assert_eq!(
        trace.get("name").and_then(Json::as_str),
        Some("service.query")
    );
    let root_dur = trace.get("dur_ns").and_then(Json::as_i64).unwrap();
    let children = trace.get("children").and_then(Json::as_array).unwrap();
    assert!(!children.is_empty(), "{trace:?}");
    let child_sum: i64 = children
        .iter()
        .filter_map(|c| c.get("dur_ns").and_then(Json::as_i64))
        .sum();
    assert!(root_dur >= child_sum, "{root_dur} < {child_sum}");
}
